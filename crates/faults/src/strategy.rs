//! Strategic Byzantine grandmaster behaviours.
//!
//! The paper's attacker applies one fixed −24 µs
//! `preciseOriginTimestamp` shift. Jiang et al. (*Resilience Bounds of
//! Network Clock Synchronization with Fault Correction*,
//! arXiv:2006.15832) show that the worst adversary against a
//! fault-corrected sync algorithm is *strategic*: it drifts, duty
//! cycles, hugs the correction boundary, or colludes — a constant shift
//! is the easiest case to mask. This module generalizes the attack into
//! a [`ByzantineStrategy`] the compromised GM evaluates at every Sync
//! transmission from `StrikeOutcome::RootObtained` onward.
//!
//! All waveforms are computed in pure integer arithmetic from the time
//! elapsed since the strike landed, so runs are bit-reproducible across
//! platforms and across cold/forked execution.

use serde::{Deserialize, Serialize};
use tsn_snapshot::{Reader, Snap, SnapError, Writer};
use tsn_time::Nanos;

use crate::attacker::PAPER_POT_OFFSET;

/// A time-varying `preciseOriginTimestamp` manipulation policy.
///
/// [`ByzantineStrategy::offset_at`] maps time-since-compromise to the
/// POT shift the malicious `ptp4l` applies. The FTA validity threshold
/// is passed in so boundary-hugging strategies can position themselves
/// relative to the aggregator's drop boundary (paper §II trim).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ByzantineStrategy {
    /// The paper's fixed shift (−24 µs as the canonical point).
    ConstantOffset {
        /// The applied POT shift.
        offset: Nanos,
    },
    /// A slow drift: `slope_per_s` of additional shift per elapsed
    /// second, emulating a masquerading oscillator-drift fault.
    LinearRamp {
        /// Shift accumulated per second of compromise.
        slope_per_s: Nanos,
    },
    /// A triangle wave of the given amplitude and period, probing the
    /// servo's transient response rather than its steady state.
    Oscillating {
        /// Peak shift (the wave spans `[-amplitude, +amplitude]`).
        amplitude: Nanos,
        /// Full wave period.
        period: Nanos,
    },
    /// Duty-cycled: `offset` for `on`, benign for `off`, repeating —
    /// defeats detectors that require persistent misbehaviour.
    Intermittent {
        /// Shift applied during the active phase.
        offset: Nanos,
        /// Active-phase duration.
        on: Nanos,
        /// Benign-phase duration.
        off: Nanos,
    },
    /// Hug the FTA drop boundary from inside: shift by
    /// `validity_threshold − margin` so the offset stays *valid* (never
    /// trimmed as an outlier by the median-distance check) while pulling
    /// the average as hard as possible.
    TrimEdge {
        /// Safety margin kept below the validity threshold.
        margin: Nanos,
    },
    /// Colluding pair member: steer toward a shared target offset so
    /// multiple compromised GMs present a consistent false timescale.
    Colluding {
        /// The target offset shared by all colluders.
        target: Nanos,
    },
    /// Rogue master (election mode only): the compromised node forges a
    /// best-possible BMCA priority vector on a *foreign* domain, wins
    /// its election, and serves time shifted by `offset` — the classic
    /// Announce-spoofing attack that external port configuration is
    /// immune to and that FTA must contain once election is dynamic.
    RogueMaster {
        /// POT shift served on the captured domain.
        offset: Nanos,
    },
}

impl ByzantineStrategy {
    /// The paper's attack expressed as a strategy.
    pub fn paper_constant() -> Self {
        ByzantineStrategy::ConstantOffset {
            offset: PAPER_POT_OFFSET,
        }
    }

    /// Stable kebab-case name used for campaign axes and labels.
    pub fn name(&self) -> &'static str {
        match self {
            ByzantineStrategy::ConstantOffset { .. } => "constant",
            ByzantineStrategy::LinearRamp { .. } => "ramp",
            ByzantineStrategy::Oscillating { .. } => "oscillating",
            ByzantineStrategy::Intermittent { .. } => "intermittent",
            ByzantineStrategy::TrimEdge { .. } => "trim-edge",
            ByzantineStrategy::Colluding { .. } => "colluding",
            ByzantineStrategy::RogueMaster { .. } => "rogue-master",
        }
    }

    /// The canonical preset behind a campaign-axis name, or `None` for
    /// an unknown name. Parameters are chosen so every preset is a
    /// serious adversary at the paper's operating point (15 µs validity
    /// threshold, 125 ms sync interval).
    pub fn named(name: &str) -> Option<Self> {
        Some(match name {
            "constant" => ByzantineStrategy::paper_constant(),
            "ramp" => ByzantineStrategy::LinearRamp {
                slope_per_s: Nanos::from_micros(2),
            },
            "oscillating" => ByzantineStrategy::Oscillating {
                amplitude: Nanos::from_micros(24),
                period: Nanos::from_secs(10),
            },
            "intermittent" => ByzantineStrategy::Intermittent {
                offset: PAPER_POT_OFFSET,
                on: Nanos::from_secs(5),
                off: Nanos::from_secs(5),
            },
            "trim-edge" => ByzantineStrategy::TrimEdge {
                margin: Nanos::from_micros(1),
            },
            "colluding" => ByzantineStrategy::Colluding {
                target: Nanos::from_micros(14),
            },
            "rogue-master" => ByzantineStrategy::RogueMaster {
                offset: PAPER_POT_OFFSET,
            },
            _ => return None,
        })
    }

    /// The named preset with its dominant magnitude parameter replaced:
    /// the peak POT shift the adversary commands, as a positive
    /// distance-from-truth. This is the knob the resilience-frontier
    /// search bisects — each strategy maps the magnitude onto its own
    /// waveform parameter, keeping the preset's shape (period, duty
    /// cycle, sign convention) fixed:
    ///
    /// * `constant` / `intermittent` / `rogue-master` — `offset = −m`
    ///   (the paper's shift is negative);
    /// * `ramp` — `slope_per_s = m` (shift after 1 s of compromise);
    /// * `oscillating` — `amplitude = m` (preset 10 s period);
    /// * `colluding` — `target = m` (the colluders' shared timescale);
    /// * `trim-edge` — `margin = m` (distance kept *below* the validity
    ///   threshold, so larger magnitudes are *weaker* attacks — the only
    ///   inverted axis, noted because a frontier search must still
    ///   bracket it deterministically).
    ///
    /// Returns `None` for an unknown name, mirroring
    /// [`ByzantineStrategy::named`].
    pub fn with_magnitude(name: &str, magnitude: Nanos) -> Option<Self> {
        Some(match name {
            "constant" => ByzantineStrategy::ConstantOffset { offset: -magnitude },
            "ramp" => ByzantineStrategy::LinearRamp {
                slope_per_s: magnitude,
            },
            "oscillating" => ByzantineStrategy::Oscillating {
                amplitude: magnitude,
                period: Nanos::from_secs(10),
            },
            "intermittent" => ByzantineStrategy::Intermittent {
                offset: -magnitude,
                on: Nanos::from_secs(5),
                off: Nanos::from_secs(5),
            },
            "trim-edge" => ByzantineStrategy::TrimEdge { margin: magnitude },
            "colluding" => ByzantineStrategy::Colluding { target: magnitude },
            "rogue-master" => ByzantineStrategy::RogueMaster { offset: -magnitude },
            _ => return None,
        })
    }

    /// Names accepted by [`ByzantineStrategy::named`], in a stable order.
    pub const NAMES: [&'static str; 7] = [
        "constant",
        "ramp",
        "oscillating",
        "intermittent",
        "trim-edge",
        "colluding",
        "rogue-master",
    ];

    /// The POT shift `elapsed` after the strike landed.
    ///
    /// `validity_threshold` is the aggregator's median-distance drop
    /// boundary (paper: 15 µs); only [`ByzantineStrategy::TrimEdge`]
    /// consults it.
    pub fn offset_at(&self, elapsed: Nanos, validity_threshold: Nanos) -> Nanos {
        match *self {
            ByzantineStrategy::ConstantOffset { offset } => offset,
            ByzantineStrategy::LinearRamp { slope_per_s } => {
                let ns = i128::from(slope_per_s.as_nanos()) * i128::from(elapsed.as_nanos())
                    / 1_000_000_000;
                Nanos::from_nanos(clamp_i128(ns))
            }
            ByzantineStrategy::Oscillating { amplitude, period } => {
                triangle(elapsed, amplitude, period)
            }
            ByzantineStrategy::Intermittent { offset, on, off } => {
                let cycle = (on + off).as_nanos().max(1);
                let phase = elapsed.as_nanos().rem_euclid(cycle);
                if phase < on.as_nanos() {
                    offset
                } else {
                    Nanos::ZERO
                }
            }
            ByzantineStrategy::TrimEdge { margin } => validity_threshold - margin,
            ByzantineStrategy::Colluding { target } => target,
            ByzantineStrategy::RogueMaster { offset } => offset,
        }
    }
}

fn clamp_i128(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

/// Triangle wave through 0, peaking at `+amplitude` a quarter period in
/// and `−amplitude` three quarters in. Integer math throughout.
fn triangle(elapsed: Nanos, amplitude: Nanos, period: Nanos) -> Nanos {
    let a = i128::from(amplitude.as_nanos());
    let q = i128::from(period.as_nanos()) / 4;
    if q == 0 {
        return amplitude;
    }
    let x = i128::from(elapsed.as_nanos()).rem_euclid(4 * q);
    let y = if x < q {
        a * x / q
    } else if x < 3 * q {
        a - a * (x - q) / q
    } else {
        -a + a * (x - 3 * q) / q
    };
    Nanos::from_nanos(clamp_i128(y))
}

impl Snap for ByzantineStrategy {
    fn put(&self, w: &mut Writer) {
        match *self {
            ByzantineStrategy::ConstantOffset { offset } => {
                0u8.put(w);
                offset.put(w);
            }
            ByzantineStrategy::LinearRamp { slope_per_s } => {
                1u8.put(w);
                slope_per_s.put(w);
            }
            ByzantineStrategy::Oscillating { amplitude, period } => {
                2u8.put(w);
                amplitude.put(w);
                period.put(w);
            }
            ByzantineStrategy::Intermittent { offset, on, off } => {
                3u8.put(w);
                offset.put(w);
                on.put(w);
                off.put(w);
            }
            ByzantineStrategy::TrimEdge { margin } => {
                4u8.put(w);
                margin.put(w);
            }
            ByzantineStrategy::Colluding { target } => {
                5u8.put(w);
                target.put(w);
            }
            ByzantineStrategy::RogueMaster { offset } => {
                6u8.put(w);
                offset.put(w);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::get(r)? {
            0 => ByzantineStrategy::ConstantOffset {
                offset: Snap::get(r)?,
            },
            1 => ByzantineStrategy::LinearRamp {
                slope_per_s: Snap::get(r)?,
            },
            2 => ByzantineStrategy::Oscillating {
                amplitude: Snap::get(r)?,
                period: Snap::get(r)?,
            },
            3 => ByzantineStrategy::Intermittent {
                offset: Snap::get(r)?,
                on: Snap::get(r)?,
                off: Snap::get(r)?,
            },
            4 => ByzantineStrategy::TrimEdge {
                margin: Snap::get(r)?,
            },
            5 => ByzantineStrategy::Colluding {
                target: Snap::get(r)?,
            },
            6 => ByzantineStrategy::RogueMaster {
                offset: Snap::get(r)?,
            },
            _ => return Err(SnapError::Malformed("byzantine strategy discriminant")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALIDITY: Nanos = Nanos::from_micros(15);

    #[test]
    fn constant_matches_paper_attack() {
        let s = ByzantineStrategy::paper_constant();
        for secs in [0i64, 1, 100, 3600] {
            assert_eq!(
                s.offset_at(Nanos::from_secs(secs), VALIDITY),
                PAPER_POT_OFFSET
            );
        }
    }

    #[test]
    fn ramp_is_linear_in_elapsed_time() {
        let s = ByzantineStrategy::LinearRamp {
            slope_per_s: Nanos::from_micros(2),
        };
        assert_eq!(s.offset_at(Nanos::ZERO, VALIDITY), Nanos::ZERO);
        assert_eq!(
            s.offset_at(Nanos::from_secs(5), VALIDITY),
            Nanos::from_micros(10)
        );
        assert_eq!(
            s.offset_at(Nanos::from_secs(10), VALIDITY),
            Nanos::from_micros(20)
        );
    }

    #[test]
    fn oscillation_is_bounded_and_periodic() {
        let amp = Nanos::from_micros(24);
        let period = Nanos::from_secs(10);
        let s = ByzantineStrategy::Oscillating {
            amplitude: amp,
            period,
        };
        for ms in (0..40_000i64).step_by(53) {
            let v = s.offset_at(Nanos::from_millis(ms), VALIDITY);
            assert!(v.abs() <= amp, "{v:?} exceeds amplitude at {ms} ms");
            let w = s.offset_at(Nanos::from_millis(ms) + period, VALIDITY);
            assert_eq!(v, w, "not periodic at {ms} ms");
        }
        // Quarter-period peaks.
        assert_eq!(s.offset_at(Nanos::from_millis(2_500), VALIDITY), amp);
        assert_eq!(s.offset_at(Nanos::from_millis(7_500), VALIDITY), -amp);
        assert_eq!(s.offset_at(Nanos::ZERO, VALIDITY), Nanos::ZERO);
    }

    #[test]
    fn intermittent_duty_cycles() {
        let s = ByzantineStrategy::Intermittent {
            offset: PAPER_POT_OFFSET,
            on: Nanos::from_secs(5),
            off: Nanos::from_secs(5),
        };
        assert_eq!(s.offset_at(Nanos::from_secs(1), VALIDITY), PAPER_POT_OFFSET);
        assert_eq!(s.offset_at(Nanos::from_secs(6), VALIDITY), Nanos::ZERO);
        assert_eq!(
            s.offset_at(Nanos::from_secs(11), VALIDITY),
            PAPER_POT_OFFSET
        );
    }

    #[test]
    fn trim_edge_stays_inside_validity_window() {
        let s = ByzantineStrategy::TrimEdge {
            margin: Nanos::from_micros(1),
        };
        let v = s.offset_at(Nanos::from_secs(7), VALIDITY);
        assert_eq!(v, Nanos::from_micros(14));
        assert!(v < VALIDITY);
    }

    #[test]
    fn named_presets_cover_all_variants() {
        let mut seen = Vec::new();
        for n in ByzantineStrategy::NAMES {
            let s = ByzantineStrategy::named(n).expect("preset exists");
            assert_eq!(s.name(), n);
            seen.push(std::mem::discriminant(&s));
        }
        seen.dedup();
        assert_eq!(seen.len(), 7, "each name maps to a distinct variant");
        assert_eq!(ByzantineStrategy::named("nope"), None);
    }

    #[test]
    fn with_magnitude_covers_all_variants_and_scales_the_shift() {
        let m = Nanos::from_micros(30);
        for n in ByzantineStrategy::NAMES {
            let s = ByzantineStrategy::with_magnitude(n, m).expect("known name");
            assert_eq!(s.name(), n, "magnitude override changed the variant");
        }
        assert_eq!(ByzantineStrategy::with_magnitude("nope", m), None);

        // The commanded peak shift equals the magnitude for the
        // offset-like strategies (sign per preset convention).
        let c = ByzantineStrategy::with_magnitude("constant", m).unwrap();
        assert_eq!(c.offset_at(Nanos::from_secs(3), VALIDITY), -m);
        let col = ByzantineStrategy::with_magnitude("colluding", m).unwrap();
        assert_eq!(col.offset_at(Nanos::from_secs(3), VALIDITY), m);
        let r = ByzantineStrategy::with_magnitude("ramp", m).unwrap();
        assert_eq!(r.offset_at(Nanos::from_secs(1), VALIDITY), m);
        let o = ByzantineStrategy::with_magnitude("oscillating", m).unwrap();
        assert_eq!(o.offset_at(Nanos::from_millis(2_500), VALIDITY), m);
        // trim-edge is the inverted axis: magnitude is the safety margin.
        let t = ByzantineStrategy::with_magnitude("trim-edge", Nanos::from_micros(2)).unwrap();
        assert_eq!(
            t.offset_at(Nanos::from_secs(3), VALIDITY),
            Nanos::from_micros(13)
        );
    }

    #[test]
    fn snap_roundtrip() {
        for n in ByzantineStrategy::NAMES {
            let s = ByzantineStrategy::named(n).unwrap();
            let mut w = Writer::new();
            s.put(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(ByzantineStrategy::get(&mut r).unwrap(), s);
        }
    }
}
