//! The cyber-attack model of the paper's first experiment.
//!
//! "We presumed an attacker A that has restricted user credentials for at
//! least two virtual GM clocks … The attacker utilizes an exploit for
//! CVE-2018-18955 to gain root access … After gaining root access, the
//! attacker replaced the benign ptp4l instances with malicious instances
//! … The malicious ptp4l instances distribute faulty
//! preciseOriginTimestamps that are offset by −24 µs."
//!
//! The attack succeeds only on vulnerable kernels, so the very same plan
//! produces the paper's Fig. 3a (identical kernels → both strikes land →
//! synchronization lost) or Fig. 3b (diverse kernels → second strike
//! fails → FTA masks the single Byzantine GM).

use crate::kernel::{is_vulnerable, CveId, KernelVersion};
use crate::strategy::ByzantineStrategy;
use serde::{Deserialize, Serialize};
use tsn_time::{Nanos, SimTime};

/// The paper's malicious `preciseOriginTimestamp` shift.
pub const PAPER_POT_OFFSET: Nanos = Nanos::from_micros(-24);

/// One planned exploit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Strike {
    /// When the attacker runs the exploit.
    pub at: SimTime,
    /// Target node (ECD index hosting the targeted GM VM).
    pub target_node: usize,
    /// CVE the exploit targets.
    pub cve: CveId,
    /// The `preciseOriginTimestamp` shift the malicious `ptp4l` applies.
    pub pot_offset: Nanos,
    /// Time-varying manipulation policy; `None` keeps the paper's
    /// constant `pot_offset` behaviour.
    #[serde(default)]
    pub strategy: Option<ByzantineStrategy>,
}

impl Strike {
    /// The POT shift this strike's GM applies `elapsed` after the
    /// exploit landed (constant `pot_offset` unless a strategy is set).
    pub fn offset_at(&self, elapsed: Nanos, validity_threshold: Nanos) -> Nanos {
        match self.strategy {
            Some(s) => s.offset_at(elapsed, validity_threshold),
            None => self.pot_offset,
        }
    }
}

/// Outcome of an exploit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrikeOutcome {
    /// Root obtained; the GM's `ptp4l` is now malicious.
    RootObtained,
    /// The kernel is not vulnerable; the attacker remains unprivileged.
    ExploitFailed,
}

/// The attack plan for an experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    strikes: Vec<Strike>,
}

impl AttackPlan {
    /// No attack.
    pub fn none() -> Self {
        AttackPlan {
            strikes: Vec::new(),
        }
    }

    /// The paper's plan: strike GM `c1_4` (node 3) at 00:21:42 h and GM
    /// `c1_1` (node 0) at 00:31:52 h, shifting POT by −24 µs.
    pub fn paper_default() -> Self {
        AttackPlan {
            strikes: vec![
                Strike {
                    at: SimTime::from_secs(21 * 60 + 42),
                    target_node: 3,
                    cve: CveId::Cve2018_18955,
                    pot_offset: PAPER_POT_OFFSET,
                    strategy: None,
                },
                Strike {
                    at: SimTime::from_secs(31 * 60 + 52),
                    target_node: 0,
                    cve: CveId::Cve2018_18955,
                    pot_offset: PAPER_POT_OFFSET,
                    strategy: None,
                },
            ],
        }
    }

    /// A custom plan.
    pub fn new(strikes: Vec<Strike>) -> Self {
        AttackPlan { strikes }
    }

    /// The planned strikes, in order.
    pub fn strikes(&self) -> &[Strike] {
        &self.strikes
    }

    /// Evaluates a strike against the target's kernel.
    pub fn attempt(strike: &Strike, target_kernel: KernelVersion) -> StrikeOutcome {
        if is_vulnerable(target_kernel, strike.cve) {
            StrikeOutcome::RootObtained
        } else {
            StrikeOutcome::ExploitFailed
        }
    }
}

/// Per-node kernel assignment for the GM clock-sync VMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAssignment {
    kernels: Vec<KernelVersion>,
}

impl KernelAssignment {
    /// All nodes run the same (exploitable) kernel — the Fig. 3a setup.
    pub fn identical(nodes: usize) -> Self {
        KernelAssignment {
            kernels: vec![KernelVersion::V4_19_1; nodes],
        }
    }

    /// Diversified kernels with only `vulnerable_node` exploitable — the
    /// Fig. 3b setup.
    ///
    /// # Panics
    ///
    /// Panics if `vulnerable_node` is out of range.
    pub fn diverse(nodes: usize, vulnerable_node: usize) -> Self {
        assert!(vulnerable_node < nodes, "node index out of range");
        let pool = [
            KernelVersion::V4_19_5,
            KernelVersion::V5_4_0,
            KernelVersion::V5_10_0,
        ];
        let kernels = (0..nodes)
            .map(|n| {
                if n == vulnerable_node {
                    KernelVersion::V4_19_1
                } else {
                    pool[n % pool.len()]
                }
            })
            .collect();
        KernelAssignment { kernels }
    }

    /// A fully custom assignment.
    pub fn custom(kernels: Vec<KernelVersion>) -> Self {
        KernelAssignment { kernels }
    }

    /// The kernel of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn kernel(&self, n: usize) -> KernelVersion {
        self.kernels[n]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// `true` if no nodes are assigned.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_timing() {
        let plan = AttackPlan::paper_default();
        assert_eq!(plan.strikes().len(), 2);
        assert_eq!(plan.strikes()[0].at, SimTime::from_secs(1302));
        assert_eq!(plan.strikes()[0].target_node, 3);
        assert_eq!(plan.strikes()[1].at, SimTime::from_secs(1912));
        assert_eq!(plan.strikes()[1].target_node, 0);
        assert_eq!(plan.strikes()[0].pot_offset, Nanos::from_micros(-24));
    }

    #[test]
    fn identical_kernels_both_strikes_land() {
        let plan = AttackPlan::paper_default();
        let kernels = KernelAssignment::identical(4);
        for s in plan.strikes() {
            assert_eq!(
                AttackPlan::attempt(s, kernels.kernel(s.target_node)),
                StrikeOutcome::RootObtained
            );
        }
    }

    #[test]
    fn diverse_kernels_mask_second_strike() {
        let plan = AttackPlan::paper_default();
        // Only node 3 (GM c1_4) runs the vulnerable kernel.
        let kernels = KernelAssignment::diverse(4, 3);
        let outcomes: Vec<StrikeOutcome> = plan
            .strikes()
            .iter()
            .map(|s| AttackPlan::attempt(s, kernels.kernel(s.target_node)))
            .collect();
        assert_eq!(
            outcomes,
            vec![StrikeOutcome::RootObtained, StrikeOutcome::ExploitFailed]
        );
    }

    #[test]
    fn diverse_pool_has_no_other_vulnerable_nodes() {
        let kernels = KernelAssignment::diverse(4, 3);
        for n in 0..3 {
            assert!(!is_vulnerable(kernels.kernel(n), CveId::Cve2018_18955));
        }
        assert!(is_vulnerable(kernels.kernel(3), CveId::Cve2018_18955));
    }

    #[test]
    fn empty_plan_is_benign() {
        assert!(AttackPlan::none().strikes().is_empty());
    }
}
