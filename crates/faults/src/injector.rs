//! The fault-injection schedule generator (paper §III-C).
//!
//! "The fault injection tool triggered periodic sequential shutdowns of
//! the GM clocks hosted on each ECD with a period of 1h … In the case of
//! redundant clock synchronization VMs, which are not GM clocks, the
//! fault injection tool randomly triggered shutdowns … Note that the
//! fault injection tool avoided injecting faults to both clock
//! synchronization VMs of a node simultaneously since this would have
//! violated our fault hypothesis."
//!
//! The schedule is generated ahead of the run from a seed, which lets us
//! (a) enforce the per-node non-overlap constraint exactly and (b) make
//! the 24 h experiment bit-reproducible.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tsn_time::{Nanos, SimTime};

/// Which clock-synchronization VM of a node a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmSlot {
    /// The grandmaster clock-sync VM (`c^x_1`).
    Grandmaster,
    /// The redundant clock-sync VM (`c^x_2`).
    Redundant,
}

/// One scheduled fail-silent shutdown (with its reboot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Shutdown instant.
    pub at: SimTime,
    /// Reboot completion instant (the VM resumes with cleared state).
    pub reboot_at: SimTime,
    /// Target node (ECD index).
    pub node: usize,
    /// Target VM slot.
    pub slot: VmSlot,
}

impl FaultEvent {
    /// `true` if the VM is down at `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        t >= self.at && t < self.reboot_at
    }
}

/// Configuration of the schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectorConfig {
    /// Experiment duration (24 h in the paper).
    pub duration: Nanos,
    /// Number of nodes (ECDs).
    pub nodes: usize,
    /// Period of the sequential GM shutdowns (1 h in the paper; each
    /// period one node's GM is shut down, cycling through the nodes).
    pub gm_shutdown_period: Nanos,
    /// Random redundant-VM shutdowns per node per hour: inclusive lower
    /// bound.
    pub random_per_hour_min: u32,
    /// Random redundant-VM shutdowns per node per hour: inclusive upper
    /// bound (the paper allows up to 12; the realized counts are far
    /// lower because of the non-overlap constraint).
    pub random_per_hour_max: u32,
    /// VM downtime range (uniform) before the reboot completes.
    pub downtime_min: Nanos,
    /// Maximum downtime.
    pub downtime_max: Nanos,
}

impl InjectorConfig {
    /// The paper's 24 h fault-injection configuration, with the random
    /// rate calibrated so the realized totals land in the same regime as
    /// the paper's 94 fail-silent VMs (48 of them GM failures).
    pub fn paper_default() -> Self {
        InjectorConfig {
            duration: Nanos::from_secs(24 * 3600),
            nodes: 4,
            gm_shutdown_period: Nanos::from_secs(3600),
            random_per_hour_min: 0,
            random_per_hour_max: 2,
            downtime_min: Nanos::from_secs(45),
            downtime_max: Nanos::from_secs(120),
        }
    }
}

/// Aggregate downtime numbers of a [`FaultSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DowntimeStats {
    /// Sum of all VM downtimes.
    pub total_down: Nanos,
    /// Sum of grandmaster-VM downtimes (time a domain was missing).
    pub gm_down: Nanos,
    /// Maximum VMs down at the same instant (bounded by the per-node
    /// constraint but not across nodes — the paper allows up to one per
    /// node).
    pub max_concurrent: usize,
}

/// A generated, constraint-checked fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero nodes or a
    /// non-positive duration).
    pub fn generate<R: Rng + ?Sized>(config: &InjectorConfig, rng: &mut R) -> Self {
        assert!(config.nodes > 0, "at least one node required");
        assert!(config.duration.as_nanos() > 0, "duration must be positive");
        let mut events = Vec::new();
        let duration_ns = config.duration.as_nanos() as u64;
        let period_ns = config.gm_shutdown_period.as_nanos() as u64;

        // Sequential GM shutdowns: one per period, cycling through nodes,
        // placed mid-period to keep clear of period boundaries.
        let mut k = 0u64;
        loop {
            let at_ns = k * period_ns + period_ns / 2;
            if at_ns >= duration_ns {
                break;
            }
            let node = (k as usize) % config.nodes;
            let at = SimTime::from_nanos(at_ns);
            let downtime = sample_downtime(config, rng);
            events.push(FaultEvent {
                at,
                reboot_at: at + downtime,
                node,
                slot: VmSlot::Grandmaster,
            });
            k += 1;
        }

        // Random redundant-VM shutdowns, respecting the per-node
        // non-overlap constraint against the (already fixed) GM downtimes
        // and previously placed redundant downtimes.
        let hours = duration_ns / 3_600_000_000_000;
        for node in 0..config.nodes {
            for hour in 0..hours {
                let n = if config.random_per_hour_max > config.random_per_hour_min {
                    rng.gen_range(config.random_per_hour_min..=config.random_per_hour_max)
                } else {
                    config.random_per_hour_min
                };
                for _ in 0..n {
                    let at_ns = hour * 3_600_000_000_000 + rng.gen_range(0..3_600_000_000_000u64);
                    let at = SimTime::from_nanos(at_ns);
                    let downtime = sample_downtime(config, rng);
                    let reboot_at = at + downtime;
                    let candidate = FaultEvent {
                        at,
                        reboot_at,
                        node,
                        slot: VmSlot::Redundant,
                    };
                    // Constraint: never both VMs of one node down at once.
                    let overlaps = events.iter().any(|e| {
                        e.node == node && e.at < candidate.reboot_at && candidate.at < e.reboot_at
                    });
                    if !overlaps && reboot_at.as_nanos() < duration_ns {
                        events.push(candidate);
                    }
                }
            }
        }

        events.sort_by_key(|e| (e.at, e.node, e.slot == VmSlot::Redundant));
        FaultSchedule { events }
    }

    /// The events, sorted by shutdown time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Total number of fail-silent VM faults.
    pub fn total(&self) -> usize {
        self.events.len()
    }

    /// Number of grandmaster failures.
    pub fn gm_failures(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.slot == VmSlot::Grandmaster)
            .count()
    }

    /// Aggregate downtime statistics: total VM-down seconds, total
    /// grandmaster-down seconds, and the maximum number of VMs down
    /// simultaneously across the whole schedule.
    pub fn downtime_stats(&self) -> DowntimeStats {
        let mut total = 0i64;
        let mut gm = 0i64;
        for e in &self.events {
            let d = (e.reboot_at - e.at).as_nanos();
            total += d;
            if e.slot == VmSlot::Grandmaster {
                gm += d;
            }
        }
        // Sweep for maximum concurrency.
        let mut points: Vec<(SimTime, i32)> = Vec::new();
        for e in &self.events {
            points.push((e.at, 1));
            points.push((e.reboot_at, -1));
        }
        points.sort();
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, delta) in points {
            cur += delta;
            peak = peak.max(cur);
        }
        DowntimeStats {
            total_down: Nanos::from_nanos(total),
            gm_down: Nanos::from_nanos(gm),
            max_concurrent: peak as usize,
        }
    }

    /// `true` if the schedule never takes both VMs of a node down at the
    /// same instant (the paper's fault-hypothesis constraint).
    pub fn respects_fault_hypothesis(&self) -> bool {
        for (i, a) in self.events.iter().enumerate() {
            for b in &self.events[i + 1..] {
                if a.node == b.node && a.slot != b.slot && a.at < b.reboot_at && b.at < a.reboot_at
                {
                    return false;
                }
            }
        }
        true
    }
}

fn sample_downtime<R: Rng + ?Sized>(config: &InjectorConfig, rng: &mut R) -> Nanos {
    let lo = config.downtime_min.as_nanos();
    let hi = config.downtime_max.as_nanos().max(lo + 1);
    Nanos::from_nanos(rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule(seed: u64) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        FaultSchedule::generate(&InjectorConfig::paper_default(), &mut rng)
    }

    #[test]
    fn gm_shutdowns_cycle_sequentially() {
        let s = schedule(1);
        let gms: Vec<&FaultEvent> = s
            .events()
            .iter()
            .filter(|e| e.slot == VmSlot::Grandmaster)
            .collect();
        assert_eq!(gms.len(), 24, "one GM shutdown per hour for 24 h");
        for (k, e) in gms.iter().enumerate() {
            assert_eq!(e.node, k % 4, "sequential cycling");
            assert_eq!(
                e.at,
                SimTime::from_secs(k as u64 * 3600 + 1800),
                "mid-period placement"
            );
        }
    }

    #[test]
    fn fault_hypothesis_never_violated() {
        for seed in 0..20 {
            let s = schedule(seed);
            assert!(s.respects_fault_hypothesis(), "seed {seed} violates");
        }
    }

    #[test]
    fn totals_in_paper_regime() {
        // The paper observed 94 fail-silent VMs, 48 of them GM failures.
        // Our calibrated generator should land within a factor of ~2.
        let s = schedule(7);
        assert!(
            (60..=150).contains(&s.total()),
            "total {} out of regime",
            s.total()
        );
        assert_eq!(s.gm_failures(), 24);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }

    #[test]
    fn events_sorted_and_within_duration() {
        let s = schedule(3);
        let dur = SimTime::from_secs(24 * 3600);
        for w in s.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in s.events() {
            assert!(e.at < dur);
            assert!(e.reboot_at > e.at);
        }
    }

    #[test]
    fn downtime_stats_consistent() {
        let s = schedule(5);
        let stats = s.downtime_stats();
        assert!(stats.gm_down <= stats.total_down);
        assert!(stats.gm_down > Nanos::ZERO);
        // Per-node constraint caps concurrency at one per node (4 nodes).
        assert!(stats.max_concurrent <= 4, "{}", stats.max_concurrent);
        // 24 GM shutdowns of 45–120 s each.
        let gm_s = stats.gm_down.as_secs_f64();
        assert!((24.0 * 45.0..=24.0 * 120.0).contains(&gm_s), "{gm_s}");
    }

    #[test]
    fn covers_reports_downtime_window() {
        let e = FaultEvent {
            at: SimTime::from_secs(100),
            reboot_at: SimTime::from_secs(160),
            node: 0,
            slot: VmSlot::Redundant,
        };
        assert!(!e.covers(SimTime::from_secs(99)));
        assert!(e.covers(SimTime::from_secs(100)));
        assert!(e.covers(SimTime::from_secs(159)));
        assert!(!e.covers(SimTime::from_secs(160)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = InjectorConfig {
            nodes: 0,
            ..InjectorConfig::paper_default()
        };
        FaultSchedule::generate(&cfg, &mut rng);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_config() -> impl Strategy<Value = InjectorConfig> {
        (
            1u64..6,     // duration hours
            2usize..6,   // nodes
            60u64..3600, // gm period seconds
            0u32..4,     // random min
            0u32..8,     // random extra
            5u64..60,    // downtime min s
            1u64..120,   // downtime extra s
        )
            .prop_map(
                |(h, nodes, gm_s, rmin, rextra, dmin, dextra)| InjectorConfig {
                    duration: Nanos::from_secs((h * 3600) as i64),
                    nodes,
                    gm_shutdown_period: Nanos::from_secs(gm_s as i64),
                    random_per_hour_min: rmin,
                    random_per_hour_max: rmin + rextra,
                    downtime_min: Nanos::from_secs(dmin as i64),
                    downtime_max: Nanos::from_secs((dmin + dextra) as i64),
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The paper's fault-hypothesis constraint — never both VMs of a
        /// node down simultaneously — holds for every configuration and
        /// seed.
        #[test]
        fn fault_hypothesis_always_respected(cfg in arb_config(), seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = FaultSchedule::generate(&cfg, &mut rng);
            prop_assert!(s.respects_fault_hypothesis());
        }

        /// Every event lies within the experiment and reboots after its
        /// shutdown; events are time-sorted.
        #[test]
        fn schedules_are_well_formed(cfg in arb_config(), seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = FaultSchedule::generate(&cfg, &mut rng);
            let dur = SimTime::ZERO + cfg.duration;
            for w in s.events().windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
            for e in s.events() {
                prop_assert!(e.at < dur);
                prop_assert!(e.reboot_at > e.at);
                prop_assert!(e.node < cfg.nodes);
            }
        }

        /// Generation is a pure function of (config, seed).
        #[test]
        fn generation_deterministic(cfg in arb_config(), seed in 0u64..1000) {
            let a = FaultSchedule::generate(&cfg, &mut StdRng::seed_from_u64(seed));
            let b = FaultSchedule::generate(&cfg, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(a, b);
        }
    }

    /// A deliberately hostile configuration space: reboot latencies from
    /// milliseconds up to hours (possibly exceeding the GM shutdown
    /// period several times over), dense random shutdown rates, and
    /// short periods — the regime where an overlap bug would surface.
    fn arb_config_extreme() -> impl Strategy<Value = InjectorConfig> {
        (
            1u64..12,        // duration hours
            2usize..8,       // nodes
            30u64..7_200,    // gm period seconds
            0u32..6,         // random min
            0u32..12,        // random extra
            1u64..7_200_000, // downtime min ms
            0u64..7_200_000, // downtime extra ms
        )
            .prop_map(|(h, nodes, gm_s, rmin, rextra, dmin_ms, dextra_ms)| {
                InjectorConfig {
                    duration: Nanos::from_secs((h * 3600) as i64),
                    nodes,
                    gm_shutdown_period: Nanos::from_secs(gm_s as i64),
                    random_per_hour_min: rmin,
                    random_per_hour_max: rmin + rextra,
                    downtime_min: Nanos::from_millis(dmin_ms as i64),
                    downtime_max: Nanos::from_millis((dmin_ms + dextra_ms) as i64),
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The fault-hypothesis constraint, re-derived independently of
        /// `respects_fault_hypothesis` (which the generator could share a
        /// bug with): for every node, no GM downtime interval ever
        /// intersects a redundant-VM downtime interval — for arbitrary
        /// seeds, durations, and reboot latencies.
        #[test]
        fn both_vm_slots_never_down_together(cfg in arb_config_extreme(), seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = FaultSchedule::generate(&cfg, &mut rng);
            for node in 0..cfg.nodes {
                let of_slot = |slot: VmSlot| {
                    s.events()
                        .iter()
                        .filter(|e| e.node == node && e.slot == slot)
                        .collect::<Vec<_>>()
                };
                for gm in of_slot(VmSlot::Grandmaster) {
                    for red in of_slot(VmSlot::Redundant) {
                        let disjoint = gm.reboot_at <= red.at || red.reboot_at <= gm.at;
                        prop_assert!(
                            disjoint,
                            "node {node}: GM down [{}, {}) overlaps redundant down [{}, {})",
                            gm.at.as_nanos(),
                            gm.reboot_at.as_nanos(),
                            red.at.as_nanos(),
                            red.reboot_at.as_nanos()
                        );
                    }
                }
            }
        }
    }
}
