//! # tsn-faults
//!
//! Fault-injection and attacker models for the `clocksync` reproduction
//! of *IEEE 802.1AS Multi-Domain Aggregation for Virtualized Distributed
//! Real-Time Systems* (DSN-S 2023).
//!
//! * [`KernelVersion`] / [`is_vulnerable`] — the kernel registry and
//!   vulnerability database behind the paper's OS-diversification
//!   argument (CVE-2018-18955);
//! * [`AttackPlan`] / [`KernelAssignment`] — the two-strike cyber attack
//!   of the Fig. 3 experiments, with outcomes gated on kernel diversity;
//! * [`ByzantineStrategy`] — strategic (time-varying, boundary-hugging,
//!   colluding) POT manipulations a compromised GM applies after
//!   `RootObtained` (arXiv:2006.15832's worst-case adversaries);
//! * [`FaultSchedule`] — the 24 h fail-silent shutdown schedule
//!   (sequential GM shutdowns + random redundant-VM shutdowns under the
//!   per-node non-overlap constraint);
//! * [`TransientFaults`] — transmit-timestamp timeouts and ETF deadline
//!   misses calibrated to the paper's observed counts.

//! # Example
//!
//! ```
//! use tsn_faults::{AttackPlan, KernelAssignment};
//!
//! let plan = AttackPlan::paper_default();
//! let diverse = KernelAssignment::diverse(4, 3);
//! let outcomes: Vec<_> = plan
//!     .strikes()
//!     .iter()
//!     .map(|s| AttackPlan::attempt(s, diverse.kernel(s.target_node)))
//!     .collect();
//! // Only the strike against the vulnerable kernel lands.
//! assert_eq!(outcomes[0], tsn_faults::StrikeOutcome::RootObtained);
//! assert_eq!(outcomes[1], tsn_faults::StrikeOutcome::ExploitFailed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacker;
mod injector;
mod kernel;
mod strategy;
mod transient;

pub use attacker::{AttackPlan, KernelAssignment, Strike, StrikeOutcome, PAPER_POT_OFFSET};
pub use injector::{DowntimeStats, FaultEvent, FaultSchedule, InjectorConfig, VmSlot};
pub use kernel::{is_vulnerable, CveId, KernelVersion, ParseKernelVersionError};
pub use strategy::ByzantineStrategy;
pub use transient::{TransientFaultConfig, TransientFaults};
