//! Kernel versions and the vulnerability database.
//!
//! The paper's first experiment hinges on OS diversification: "we
//! intentionally used an exploitable kernel version on all GM clocks" vs.
//! "diversifying the used Linux kernel version so only virtual GM c1_4
//! used the exploitable Linux kernel v4.19.1". The attacker's exploit for
//! CVE-2018-18955 (a `user_namespace` id-mapping privilege escalation)
//! succeeds exactly on vulnerable kernels, so whether Byzantine fault
//! tolerance survives depends on how many GMs share the vulnerable stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Linux kernel version triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelVersion {
    /// Major version.
    pub major: u16,
    /// Minor version.
    pub minor: u16,
    /// Patch level.
    pub patch: u16,
}

impl KernelVersion {
    /// Creates a version triple.
    pub const fn new(major: u16, minor: u16, patch: u16) -> Self {
        KernelVersion {
            major,
            minor,
            patch,
        }
    }

    /// The exploitable kernel the paper installs on attack targets.
    pub const V4_19_1: KernelVersion = KernelVersion::new(4, 19, 1);
    /// A patched 4.19 series kernel.
    pub const V4_19_5: KernelVersion = KernelVersion::new(4, 19, 5);
    /// A newer diversified kernel.
    pub const V5_4_0: KernelVersion = KernelVersion::new(5, 4, 0);
    /// Another diversified kernel.
    pub const V5_10_0: KernelVersion = KernelVersion::new(5, 10, 0);
}

impl fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// Error from parsing a kernel version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelVersionError;

impl fmt::Display for ParseKernelVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected `major.minor.patch`")
    }
}

impl std::error::Error for ParseKernelVersionError {}

impl std::str::FromStr for KernelVersion {
    type Err = ParseKernelVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut next = || {
            parts
                .next()
                .and_then(|p| p.parse::<u16>().ok())
                .ok_or(ParseKernelVersionError)
        };
        let v = KernelVersion::new(next()?, next()?, next()?);
        if parts.next().is_some() {
            return Err(ParseKernelVersionError);
        }
        Ok(v)
    }
}

/// Identifies a CVE in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CveId {
    /// CVE-2018-18955: `user_namespace` privilege escalation
    /// (exploit 47164, used by the paper's attacker).
    Cve2018_18955,
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CveId::Cve2018_18955 => write!(f, "CVE-2018-18955"),
        }
    }
}

/// Returns `true` if `kernel` is vulnerable to `cve`.
///
/// CVE-2018-18955 affects Linux 4.15 through 4.19.1 (fixed in 4.19.2 /
/// 4.18.19).
pub fn is_vulnerable(kernel: KernelVersion, cve: CveId) -> bool {
    match cve {
        CveId::Cve2018_18955 => {
            kernel >= KernelVersion::new(4, 15, 0) && kernel <= KernelVersion::new(4, 19, 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kernel_is_vulnerable() {
        assert!(is_vulnerable(KernelVersion::V4_19_1, CveId::Cve2018_18955));
    }

    #[test]
    fn patched_and_diverse_kernels_are_not() {
        assert!(!is_vulnerable(KernelVersion::V4_19_5, CveId::Cve2018_18955));
        assert!(!is_vulnerable(KernelVersion::V5_4_0, CveId::Cve2018_18955));
        assert!(!is_vulnerable(KernelVersion::V5_10_0, CveId::Cve2018_18955));
        assert!(!is_vulnerable(
            KernelVersion::new(4, 14, 99),
            CveId::Cve2018_18955
        ));
    }

    #[test]
    fn version_ordering() {
        assert!(KernelVersion::new(4, 19, 1) < KernelVersion::new(4, 19, 2));
        assert!(KernelVersion::new(4, 19, 9) < KernelVersion::new(5, 4, 0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(KernelVersion::V4_19_1.to_string(), "4.19.1");
        assert_eq!(CveId::Cve2018_18955.to_string(), "CVE-2018-18955");
    }

    #[test]
    fn parse_roundtrip() {
        let v: KernelVersion = "5.10.42".parse().unwrap();
        assert_eq!(v, KernelVersion::new(5, 10, 42));
        assert_eq!(v.to_string().parse::<KernelVersion>().unwrap(), v);
        assert!("5.10".parse::<KernelVersion>().is_err());
        assert!("5.10.x".parse::<KernelVersion>().is_err());
        assert!("5.10.4.2".parse::<KernelVersion>().is_err());
    }
}
