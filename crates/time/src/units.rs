//! Time units used throughout the simulation.
//!
//! Three distinct notions of time exist in a clock-synchronization
//! simulation, and mixing them up is the classic source of bugs. We give
//! each its own newtype:
//!
//! * [`SimTime`] — absolute *true* time of the discrete-event simulation,
//!   the "God's eye" timeline. Unsigned nanoseconds since simulation start.
//! * [`Nanos`] — a signed duration in nanoseconds.
//! * [`ClockTime`] — a *reading of some clock* (a PHC, a system clock, or
//!   `CLOCK_SYNCTIME`). Signed, because a disciplined clock may be stepped
//!   below its epoch.
//!
//! All arithmetic that crosses the boundary between true time and clock
//! time must go through an explicit clock model ([`crate::Phc`] or
//! similar); there are deliberately no direct conversions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Absolute simulation ("true") time in nanoseconds since simulation start.
///
/// This is the timeline the discrete-event engine orders events on. No
/// simulated component can observe it directly; components only see
/// [`ClockTime`] readings of their local clocks.
///
/// # Examples
///
/// ```
/// use tsn_time::{SimTime, Nanos};
/// let t = SimTime::ZERO + Nanos::from_millis(125);
/// assert_eq!(t.as_nanos(), 125_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulation time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a simulation time from nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a simulation time from whole seconds since start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a simulation time from whole milliseconds since start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future, and at `i64::MAX` ns if the elapsed span does
    /// not fit a signed duration (simulated horizons past ~292 years).
    pub fn saturating_since(self, earlier: SimTime) -> Nanos {
        Nanos(i64::try_from(self.0.saturating_sub(earlier.0)).unwrap_or(i64::MAX))
    }

    /// Checked addition of a signed duration; `None` on under/overflow.
    pub fn checked_add(self, d: Nanos) -> Option<SimTime> {
        self.0.checked_add_signed(d.0).map(SimTime)
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(
            self.0
                .checked_add_signed(rhs.0)
                .expect("SimTime arithmetic overflow"),
        )
    }
}

impl AddAssign<Nanos> for SimTime {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub<Nanos> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Nanos) -> SimTime {
        SimTime(
            self.0
                .checked_add_signed(-rhs.0)
                .expect("SimTime arithmetic underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Nanos;
    /// Signed difference of two absolute times. Saturates at the
    /// `Nanos` range ends instead of wrapping when either operand lies
    /// beyond `i64::MAX` ns (`u64 as i64` would flip the sign there).
    fn sub(self, rhs: SimTime) -> Nanos {
        let diff = if self.0 >= rhs.0 {
            i64::try_from(self.0 - rhs.0).unwrap_or(i64::MAX)
        } else {
            i64::try_from(rhs.0 - self.0)
                .ok()
                .and_then(i64::checked_neg)
                .unwrap_or(i64::MIN)
        };
        Nanos(diff)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1_000_000_000;
        let h = total_s / 3600;
        let m = (total_s % 3600) / 60;
        let s = total_s % 60;
        let ns = self.0 % 1_000_000_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ns:09}")
    }
}

/// A signed duration in nanoseconds.
///
/// # Examples
///
/// ```
/// use tsn_time::Nanos;
/// let s = Nanos::from_millis(125);
/// assert_eq!(s.as_nanos(), 125_000_000);
/// assert_eq!((-s).abs(), s);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(i64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from signed nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from signed microseconds.
    pub const fn from_micros(us: i64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from signed milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from signed whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds (rounds to nearest
    /// ns). Non-finite inputs map to zero; magnitudes beyond the `i64`
    /// nanosecond range clamp to the nearest representable duration.
    pub fn from_secs_f64(s: f64) -> Self {
        let ns = (s * 1e9).round();
        if ns.is_nan() {
            return Nanos::ZERO;
        }
        // `f64 -> i64` casts saturate since Rust 1.45, but spell the
        // clamp out so the boundary behaviour is explicit and testable.
        Nanos(ns.clamp(i64::MIN as f64, i64::MAX as f64) as i64)
    }

    /// The raw signed nanosecond count.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// The duration in fractional seconds (for gain computation/reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Absolute value of the duration.
    pub const fn abs(self) -> Nanos {
        Nanos(self.0.abs())
    }

    /// `true` if the duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Neg for Nanos {
    type Output = Nanos;
    fn neg(self) -> Nanos {
        Nanos(-self.0)
    }
}

impl Mul<i64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: i64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<i64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: i64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem for Nanos {
    type Output = Nanos;
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        let abs = ns.unsigned_abs();
        if abs >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if abs >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if abs >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A reading of some simulated clock, in signed nanoseconds since that
/// clock's epoch.
///
/// Different clocks have different epochs and rates; comparing readings of
/// *different* clocks only makes sense through the synchronization
/// machinery being simulated.
///
/// # Examples
///
/// ```
/// use tsn_time::{ClockTime, Nanos};
/// let t = ClockTime::from_nanos(1_000);
/// assert_eq!(t + Nanos::from_nanos(24), ClockTime::from_nanos(1_024));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClockTime(i64);

impl ClockTime {
    /// The clock's epoch.
    pub const ZERO: ClockTime = ClockTime(0);

    /// Creates a clock reading from signed nanoseconds since the epoch.
    pub const fn from_nanos(ns: i64) -> Self {
        ClockTime(ns)
    }

    /// Signed nanoseconds since the clock's epoch.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Rounds this reading down to a multiple of `interval` (used to align
    /// transmissions to synchronization-interval boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn floor_to(self, interval: Nanos) -> ClockTime {
        assert!(interval.as_nanos() > 0, "interval must be positive");
        ClockTime(self.0.div_euclid(interval.as_nanos()) * interval.as_nanos())
    }

    /// The next multiple of `interval` strictly after this reading.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn next_multiple_of(self, interval: Nanos) -> ClockTime {
        let floored = self.floor_to(interval);
        floored + interval
    }

    /// The smallest multiple of `interval` at or after this reading.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn ceil_to(self, interval: Nanos) -> ClockTime {
        let floored = self.floor_to(interval);
        if floored == self {
            self
        } else {
            floored + interval
        }
    }
}

impl Add<Nanos> for ClockTime {
    type Output = ClockTime;
    fn add(self, rhs: Nanos) -> ClockTime {
        ClockTime(self.0 + rhs.0)
    }
}

impl Sub<Nanos> for ClockTime {
    type Output = ClockTime;
    fn sub(self, rhs: Nanos) -> ClockTime {
        ClockTime(self.0 - rhs.0)
    }
}

impl Sub<ClockTime> for ClockTime {
    type Output = Nanos;
    fn sub(self, rhs: ClockTime) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for ClockTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Parts-per-billion frequency quantity (1 ppm = 1000 ppb).
///
/// Used for oscillator drift and servo frequency adjustments.
pub type Ppb = f64;

// --- Checkpoint codec ---------------------------------------------------

impl tsn_snapshot::Snap for SimTime {
    fn put(&self, w: &mut tsn_snapshot::Writer) {
        self.as_nanos().put(w);
    }
    fn get(r: &mut tsn_snapshot::Reader<'_>) -> Result<Self, tsn_snapshot::SnapError> {
        Ok(SimTime::from_nanos(u64::get(r)?))
    }
}

impl tsn_snapshot::Snap for Nanos {
    fn put(&self, w: &mut tsn_snapshot::Writer) {
        self.as_nanos().put(w);
    }
    fn get(r: &mut tsn_snapshot::Reader<'_>) -> Result<Self, tsn_snapshot::SnapError> {
        Ok(Nanos::from_nanos(i64::get(r)?))
    }
}

impl tsn_snapshot::Snap for ClockTime {
    fn put(&self, w: &mut tsn_snapshot::Writer) {
        self.as_nanos().put(w);
    }
    fn get(r: &mut tsn_snapshot::Reader<'_>) -> Result<Self, tsn_snapshot::SnapError> {
        Ok(ClockTime::from_nanos(i64::get(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_millis(125);
        assert_eq!(t + Nanos::from_millis(125), SimTime::from_millis(250));
        assert_eq!(SimTime::from_millis(250) - t, Nanos::from_millis(125));
        assert_eq!(t - Nanos::from_millis(25), SimTime::from_millis(100));
    }

    #[test]
    fn simtime_display_is_wall_clock_style() {
        let t = SimTime::from_secs(6 * 3600 + 45 * 60 + 49);
        assert_eq!(format!("{t}"), "06:45:49.000000000");
    }

    #[test]
    fn simtime_saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), Nanos::from_secs(1));
        assert_eq!(a.saturating_since(b), Nanos::ZERO);
    }

    #[test]
    fn simtime_saturating_since_saturates_at_i64_max_ns() {
        // A span wider than i64::MAX ns (u64 arithmetic) must clamp to
        // the largest representable duration, not wrap negative as the
        // old `u64 as i64` cast did.
        let huge = SimTime::from_nanos(u64::MAX);
        assert_eq!(
            huge.saturating_since(SimTime::ZERO),
            Nanos::from_nanos(i64::MAX)
        );
        assert_eq!(
            SimTime::from_nanos(i64::MAX as u64 + 1).saturating_since(SimTime::ZERO),
            Nanos::from_nanos(i64::MAX)
        );
        // Exactly representable spans stay exact.
        assert_eq!(
            SimTime::from_nanos(i64::MAX as u64).saturating_since(SimTime::ZERO),
            Nanos::from_nanos(i64::MAX)
        );
        assert_eq!(
            huge.saturating_since(SimTime::from_nanos(u64::MAX - 5)),
            Nanos::from_nanos(5)
        );
    }

    #[test]
    fn simtime_sub_saturates_instead_of_wrapping() {
        let huge = SimTime::from_nanos(u64::MAX);
        // Forward difference beyond the signed range clamps high ...
        assert_eq!(huge - SimTime::ZERO, Nanos::from_nanos(i64::MAX));
        // ... the reverse clamps low ...
        assert_eq!(SimTime::ZERO - huge, Nanos::from_nanos(i64::MIN));
        // ... and differences inside the range stay exact even when the
        // operands themselves exceed i64::MAX ns.
        assert_eq!(huge - SimTime::from_nanos(u64::MAX - 7), Nanos::from_nanos(7));
        assert_eq!(SimTime::from_nanos(u64::MAX - 7) - huge, Nanos::from_nanos(-7));
        assert_eq!(
            SimTime::from_nanos(i64::MAX as u64) - SimTime::ZERO,
            Nanos::from_nanos(i64::MAX)
        );
    }

    #[test]
    fn nanos_from_secs_f64_boundaries() {
        // NaN maps to zero instead of an unspecified cast result.
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        // Infinities and out-of-range magnitudes clamp to the i64 ns
        // range ends.
        assert_eq!(
            Nanos::from_secs_f64(f64::INFINITY),
            Nanos::from_nanos(i64::MAX)
        );
        assert_eq!(
            Nanos::from_secs_f64(f64::NEG_INFINITY),
            Nanos::from_nanos(i64::MIN)
        );
        assert_eq!(Nanos::from_secs_f64(1e300), Nanos::from_nanos(i64::MAX));
        assert_eq!(Nanos::from_secs_f64(-1e300), Nanos::from_nanos(i64::MIN));
        // The largest exactly-representable boundary region: i64::MAX
        // ns is ~9.22e18; the clamp keeps the result at the range end.
        assert_eq!(
            Nanos::from_secs_f64(i64::MAX as f64 / 1e9),
            Nanos::from_nanos(i64::MAX)
        );
    }

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1000));
        assert_eq!(Nanos::from_secs_f64(0.125), Nanos::from_millis(125));
    }

    #[test]
    fn nanos_display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(322)), "322ns");
        assert_eq!(format!("{}", Nanos::from_micros(10)), "10.000us");
        assert_eq!(format!("{}", Nanos::from_millis(125)), "125.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(-2)), "-2.000s");
    }

    #[test]
    fn clocktime_floor_and_next_multiple() {
        let s = Nanos::from_millis(125);
        let t = ClockTime::from_nanos(300_000_000);
        assert_eq!(t.floor_to(s), ClockTime::from_nanos(250_000_000));
        assert_eq!(t.next_multiple_of(s), ClockTime::from_nanos(375_000_000));
        // Negative readings floor toward negative infinity.
        let neg = ClockTime::from_nanos(-1);
        assert_eq!(neg.floor_to(s), ClockTime::from_nanos(-125_000_000));
        assert_eq!(neg.next_multiple_of(s), ClockTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn clocktime_floor_rejects_zero_interval() {
        ClockTime::ZERO.floor_to(Nanos::ZERO);
    }
}
