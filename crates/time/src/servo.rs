//! Proportional-integral clock servo, modeled on LinuxPTP's `pi.c`.
//!
//! `ptp4l` disciplines the PHC with a PI controller: the proportional and
//! integral constants are derived from the synchronization interval, the
//! first sample pair estimates the frequency error directly, and large
//! offsets are corrected by *stepping* the clock rather than slewing.
//!
//! In the paper's multi-domain design there is exactly **one** servo per
//! clock-synchronization VM, shared by the `M` `ptp4l` instances through
//! the `FTSHMEM` region ("the state variables of a proportional integral
//! (PI) controller used in LinuxPTP to derive the frequency offsets").
//! This module provides that servo; `tsn-fta` stores it in the shared
//! region.

use crate::units::{Nanos, Ppb};
use serde::{Deserialize, Serialize};

/// Configuration of the PI servo, mirroring LinuxPTP's option names.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServoConfig {
    /// `pi_proportional_scale` (LinuxPTP default 0.7).
    pub kp_scale: f64,
    /// `pi_proportional_exponent` (LinuxPTP default −0.3).
    pub kp_exponent: f64,
    /// `pi_proportional_norm_max` (LinuxPTP default 0.7).
    pub kp_norm_max: f64,
    /// `pi_integral_scale` (LinuxPTP default 0.3).
    pub ki_scale: f64,
    /// `pi_integral_exponent` (LinuxPTP default 0.4).
    pub ki_exponent: f64,
    /// `pi_integral_norm_max` (LinuxPTP default 0.3).
    pub ki_norm_max: f64,
    /// `first_step_threshold`: on the first update, offsets larger than
    /// this are corrected by stepping (LinuxPTP default 20 µs).
    pub first_step_threshold: Nanos,
    /// `step_threshold`: after lock, offsets larger than this are corrected
    /// by stepping; zero disables stepping after the first update
    /// (LinuxPTP default 0).
    pub step_threshold: Nanos,
    /// `max_frequency`: servo output clamp in ppb (LinuxPTP default
    /// 900 000).
    pub max_frequency_ppb: Ppb,
}

impl Default for ServoConfig {
    fn default() -> Self {
        ServoConfig {
            kp_scale: 0.7,
            kp_exponent: -0.3,
            kp_norm_max: 0.7,
            ki_scale: 0.3,
            ki_exponent: 0.4,
            ki_norm_max: 0.3,
            first_step_threshold: Nanos::from_micros(20),
            step_threshold: Nanos::ZERO,
            max_frequency_ppb: 900_000.0,
        }
    }
}

impl ServoConfig {
    /// Effective proportional gain for a given synchronization interval,
    /// per LinuxPTP's `pi_create` logic.
    pub fn kp(&self, sync_interval: Nanos) -> f64 {
        let s = sync_interval.as_secs_f64();
        (self.kp_scale * s.powf(self.kp_exponent)).min(self.kp_norm_max) / s
    }

    /// Effective integral gain for a given synchronization interval.
    pub fn ki(&self, sync_interval: Nanos) -> f64 {
        let s = sync_interval.as_secs_f64();
        (self.ki_scale * s.powf(self.ki_exponent)).min(self.ki_norm_max) / s
    }
}

/// Servo lock state, as reported by LinuxPTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServoState {
    /// Gathering initial samples; no useful output yet.
    Unlocked,
    /// The last sample demanded a clock step.
    Jump,
    /// Tracking; output is a frequency adjustment.
    Locked,
}

/// One servo update's command to the clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServoOutput {
    /// Not enough samples yet; leave the clock alone.
    Gathering,
    /// Step the clock by `delta` and set the frequency adjustment to
    /// `freq_adj_ppb`.
    Step {
        /// Phase step to apply to the clock.
        delta: Nanos,
        /// Frequency adjustment to apply after the step.
        freq_adj_ppb: Ppb,
    },
    /// Slew: set the frequency adjustment to `freq_adj_ppb`.
    Adjust {
        /// Frequency adjustment to apply.
        freq_adj_ppb: Ppb,
    },
}

impl ServoOutput {
    /// Lower-case variant name for logs and trace lanes.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ServoOutput::Gathering => "gathering",
            ServoOutput::Step { .. } => "step",
            ServoOutput::Adjust { .. } => "adjust",
        }
    }

    /// The frequency adjustment carried by this output, if any.
    pub fn freq_adj_ppb(&self) -> Option<Ppb> {
        match *self {
            ServoOutput::Gathering => None,
            ServoOutput::Step { freq_adj_ppb, .. } | ServoOutput::Adjust { freq_adj_ppb } => {
                Some(freq_adj_ppb)
            }
        }
    }
}

/// PI servo instance.
///
/// Offsets follow the PTP convention `offset = slave − master`: a positive
/// offset means the local clock is ahead, so the returned frequency
/// adjustment will be negative (slow the clock down).
///
/// # Examples
///
/// ```
/// use tsn_time::{PiServo, ServoConfig, ServoOutput, Nanos, ClockTime};
/// let mut servo = PiServo::new(ServoConfig::default(), Nanos::from_millis(125));
/// let s = Nanos::from_millis(125);
/// let mut t = ClockTime::ZERO;
/// // Constant +100 ns offset: once locked, the servo slews the clock
/// // slower.
/// let _ = servo.sample(Nanos::from_nanos(100), t);
/// t = t + s;
/// let _ = servo.sample(Nanos::from_nanos(100), t);
/// t = t + s;
/// let out = servo.sample(Nanos::from_nanos(100), t);
/// let adj = out.freq_adj_ppb().expect("locked after two samples");
/// assert!(adj < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PiServo {
    config: ServoConfig,
    kp: f64,
    ki: f64,
    state: ServoState,
    count: u8,
    first_offset: Nanos,
    first_local: crate::units::ClockTime,
    /// Estimated frequency error of the local clock in ppb (LinuxPTP's
    /// `drift`). The applied adjustment is the negation of the PI output.
    drift_ppb: Ppb,
}

impl PiServo {
    /// Creates a servo for the given synchronization interval.
    ///
    /// # Panics
    ///
    /// Panics if `sync_interval` is not positive.
    pub fn new(config: ServoConfig, sync_interval: Nanos) -> Self {
        assert!(
            sync_interval.as_nanos() > 0,
            "sync interval must be positive"
        );
        PiServo {
            kp: config.kp(sync_interval),
            ki: config.ki(sync_interval),
            config,
            state: ServoState::Unlocked,
            count: 0,
            first_offset: Nanos::ZERO,
            first_local: crate::units::ClockTime::ZERO,
            drift_ppb: 0.0,
        }
    }

    /// The servo's current state.
    pub fn state(&self) -> ServoState {
        self.state
    }

    /// The current frequency-error estimate in ppb.
    pub fn drift_ppb(&self) -> Ppb {
        self.drift_ppb
    }

    /// Effective proportional gain.
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// Effective integral gain.
    pub fn ki(&self) -> f64 {
        self.ki
    }

    /// Feeds one `(offset, local timestamp)` sample and returns the clock
    /// command, following LinuxPTP `pi_sample`.
    pub fn sample(&mut self, offset: Nanos, local_ts: crate::units::ClockTime) -> ServoOutput {
        match self.count {
            0 => {
                self.first_offset = offset;
                self.first_local = local_ts;
                self.count = 1;
                self.state = ServoState::Unlocked;
                ServoOutput::Gathering
            }
            1 => {
                let dt = (local_ts - self.first_local).as_secs_f64();
                if dt <= 0.0 {
                    // Duplicate or reordered timestamp: restart gathering.
                    self.first_offset = offset;
                    self.first_local = local_ts;
                    return ServoOutput::Gathering;
                }
                // Direct frequency-error estimate from the two samples.
                let est = (offset - self.first_offset).as_nanos() as f64 / dt;
                self.drift_ppb = (self.drift_ppb + est).clamp(
                    -self.config.max_frequency_ppb,
                    self.config.max_frequency_ppb,
                );
                self.count = 2;
                if offset.abs() > self.config.first_step_threshold
                    && self.config.first_step_threshold > Nanos::ZERO
                {
                    self.state = ServoState::Jump;
                    ServoOutput::Step {
                        delta: -offset,
                        freq_adj_ppb: -self.drift_ppb,
                    }
                } else {
                    self.state = ServoState::Locked;
                    ServoOutput::Adjust {
                        freq_adj_ppb: -self.drift_ppb,
                    }
                }
            }
            _ => {
                if self.config.step_threshold > Nanos::ZERO
                    && offset.abs() > self.config.step_threshold
                {
                    self.state = ServoState::Jump;
                    return ServoOutput::Step {
                        delta: -offset,
                        freq_adj_ppb: -self.drift_ppb,
                    };
                }
                self.state = ServoState::Locked;
                let off = offset.as_nanos() as f64;
                let ki_term = self.ki * off;
                let ppb = self.kp * off + self.drift_ppb + ki_term;
                let clamped = ppb.clamp(
                    -self.config.max_frequency_ppb,
                    self.config.max_frequency_ppb,
                );
                if ppb == clamped {
                    self.drift_ppb += ki_term;
                }
                ServoOutput::Adjust {
                    freq_adj_ppb: -clamped,
                }
            }
        }
    }

    /// Resets the servo to the gathering state, preserving the drift
    /// estimate (LinuxPTP `servo_reset` keeps configuration; we also keep
    /// drift, which is what `ptp4l` effectively does across a master
    /// change when `servo_offset_threshold` is unset).
    pub fn reset(&mut self) {
        self.count = 0;
        self.state = ServoState::Unlocked;
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl tsn_snapshot::Snap for ServoState {
    fn put(&self, w: &mut Writer) {
        let tag: u8 = match self {
            ServoState::Unlocked => 0,
            ServoState::Jump => 1,
            ServoState::Locked => 2,
        };
        tag.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::get(r)? {
            0 => Ok(ServoState::Unlocked),
            1 => Ok(ServoState::Jump),
            2 => Ok(ServoState::Locked),
            _ => Err(SnapError::Malformed("servo state discriminant")),
        }
    }
}

impl SnapState for PiServo {
    fn save_state(&self, w: &mut Writer) {
        self.state.put(w);
        self.count.put(w);
        self.first_offset.put(w);
        self.first_local.put(w);
        self.drift_ppb.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.state = Snap::get(r)?;
        self.count = Snap::get(r)?;
        self.first_offset = Snap::get(r)?;
        self.first_local = Snap::get(r)?;
        self.drift_ppb = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ClockTime;

    const S: Nanos = Nanos::from_millis(125);

    fn run_servo(offsets: &[i64]) -> Vec<ServoOutput> {
        let mut servo = PiServo::new(ServoConfig::default(), S);
        let mut t = ClockTime::ZERO;
        offsets
            .iter()
            .map(|&o| {
                let out = servo.sample(Nanos::from_nanos(o), t);
                t = t + S;
                out
            })
            .collect()
    }

    #[test]
    fn gains_match_linuxptp_formula() {
        let cfg = ServoConfig::default();
        // For S = 0.125 s: kp = min(0.7·0.125^-0.3, 0.7)/0.125 = 0.7/0.125.
        assert!((cfg.kp(S) - 0.7 / 0.125).abs() < 1e-9);
        // ki = min(0.3·0.125^0.4, 0.3)/0.125 = 0.3·0.125^0.4/0.125.
        let expected_ki = 0.3 * 0.125f64.powf(0.4) / 0.125;
        assert!((cfg.ki(S) - expected_ki).abs() < 1e-9);
    }

    #[test]
    fn first_sample_gathers() {
        let outs = run_servo(&[100]);
        assert_eq!(outs[0], ServoOutput::Gathering);
    }

    #[test]
    fn second_sample_estimates_drift() {
        // Offset grows 125 ns per 125 ms interval → +1000 ppb drift; the
        // adjustment is the negation.
        let outs = run_servo(&[0, 125]);
        match outs[1] {
            ServoOutput::Adjust { freq_adj_ppb } => {
                assert!((freq_adj_ppb + 1000.0).abs() < 1e-6, "{freq_adj_ppb}");
            }
            ref o => panic!("expected adjust, got {o:?}"),
        }
    }

    #[test]
    fn large_first_offset_steps() {
        let outs = run_servo(&[50_000, 50_000]);
        match outs[1] {
            ServoOutput::Step { delta, .. } => {
                assert_eq!(delta, Nanos::from_nanos(-50_000));
            }
            ref o => panic!("expected step, got {o:?}"),
        }
    }

    #[test]
    fn positive_offset_slows_clock() {
        let outs = run_servo(&[100, 100, 100]);
        let adj = outs[2].freq_adj_ppb().unwrap();
        assert!(adj < 0.0, "adjustment {adj}");
    }

    #[test]
    fn output_clamped_to_max_frequency() {
        let outs = run_servo(&[0, 0, 1_000_000_000]);
        let adj = outs[2].freq_adj_ppb().unwrap();
        assert_eq!(adj, -900_000.0);
    }

    #[test]
    fn converges_on_constant_drift_plant() {
        // Closed loop: plant is a clock with +3000 ppb error; each interval
        // the offset integrates the residual frequency error.
        let mut servo = PiServo::new(ServoConfig::default(), S);
        let mut t = ClockTime::ZERO;
        let plant_ppb = 3000.0;
        let mut adj_ppb = 0.0;
        let mut offset_ns = 0.0;
        let mut last_offsets = Vec::new();
        for i in 0..400 {
            offset_ns += (plant_ppb + adj_ppb) * S.as_secs_f64();
            let out = servo.sample(Nanos::from_nanos(offset_ns.round() as i64), t);
            match out {
                ServoOutput::Gathering => {}
                ServoOutput::Step {
                    delta,
                    freq_adj_ppb,
                } => {
                    offset_ns += delta.as_nanos() as f64;
                    adj_ppb = freq_adj_ppb;
                }
                ServoOutput::Adjust { freq_adj_ppb } => adj_ppb = freq_adj_ppb,
            }
            t = t + S;
            if i >= 350 {
                last_offsets.push(offset_ns.abs());
            }
        }
        let max_tail = last_offsets.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_tail < 5.0,
            "did not converge: tail offset {max_tail} ns"
        );
        assert!((adj_ppb + plant_ppb).abs() < 5.0, "adj {adj_ppb}");
    }

    #[test]
    fn step_threshold_after_lock() {
        let cfg = ServoConfig {
            step_threshold: Nanos::from_micros(20),
            ..ServoConfig::default()
        };
        let mut servo = PiServo::new(cfg, S);
        let mut t = ClockTime::ZERO;
        for _ in 0..3 {
            servo.sample(Nanos::from_nanos(10), t);
            t = t + S;
        }
        // A −24 µs offset (the paper's attack magnitude) exceeds the 20 µs
        // step threshold and forces a jump.
        let out = servo.sample(Nanos::from_micros(-24), t);
        match out {
            ServoOutput::Step { delta, .. } => assert_eq!(delta, Nanos::from_micros(24)),
            ref o => panic!("expected step, got {o:?}"),
        }
        assert_eq!(servo.state(), ServoState::Jump);
    }

    #[test]
    fn reset_returns_to_gathering() {
        let mut servo = PiServo::new(ServoConfig::default(), S);
        let mut t = ClockTime::ZERO;
        for _ in 0..3 {
            servo.sample(Nanos::from_nanos(5), t);
            t = t + S;
        }
        assert_eq!(servo.state(), ServoState::Locked);
        servo.reset();
        assert_eq!(servo.state(), ServoState::Unlocked);
        assert_eq!(servo.sample(Nanos::ZERO, t), ServoOutput::Gathering);
    }

    #[test]
    fn duplicate_timestamp_does_not_divide_by_zero() {
        let mut servo = PiServo::new(ServoConfig::default(), S);
        let t = ClockTime::ZERO;
        assert_eq!(
            servo.sample(Nanos::from_nanos(1), t),
            ServoOutput::Gathering
        );
        assert_eq!(
            servo.sample(Nanos::from_nanos(2), t),
            ServoOutput::Gathering
        );
    }

    #[test]
    #[should_panic(expected = "sync interval must be positive")]
    fn zero_interval_rejected() {
        let _ = PiServo::new(ServoConfig::default(), Nanos::ZERO);
    }
}
