//! Hardware timestamping error model.
//!
//! Real NICs timestamp frames at the MAC/PHY boundary with a granularity
//! set by the timestamping counter (8 ns on the Intel I210's 125 MHz SYSTIM
//! clock) plus PHY latency variation. `ptp4l` sees those errors directly;
//! they bound the achievable precision together with path-delay asymmetry.

use crate::units::Nanos;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the timestamping error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterConfig {
    /// Standard deviation of Gaussian timestamp noise, in ns.
    pub sigma_ns: f64,
    /// Timestamp counter granularity in ns (readings are quantized to a
    /// multiple of this). 8 ns models the I210.
    pub granularity_ns: u32,
}

impl Default for JitterConfig {
    fn default() -> Self {
        JitterConfig {
            sigma_ns: 8.0,
            granularity_ns: 8,
        }
    }
}

impl JitterConfig {
    /// A noiseless model (for tests that need exact timestamps).
    pub fn none() -> Self {
        JitterConfig {
            sigma_ns: 0.0,
            granularity_ns: 1,
        }
    }
}

/// Samples a timestamp error for one timestamping operation.
///
/// # Examples
///
/// ```
/// use tsn_time::{JitterConfig, sample_timestamp_error};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let e = sample_timestamp_error(&JitterConfig::default(), &mut rng);
/// assert!(e.abs().as_nanos() < 1_000);
/// ```
pub fn sample_timestamp_error<R: Rng + ?Sized>(config: &JitterConfig, rng: &mut R) -> Nanos {
    let noise = if config.sigma_ns > 0.0 {
        // Irwin-Hall approximation of a standard normal.
        let mut z = -6.0;
        for _ in 0..12 {
            z += rng.gen::<f64>();
        }
        z * config.sigma_ns
    } else {
        0.0
    };
    let g = config.granularity_ns.max(1) as f64;
    let quantized = (noise / g).round() * g;
    Nanos::from_nanos(quantized as i64)
}

/// Quantizes an exact timestamp value to the counter granularity.
pub fn quantize(ts_ns: i64, config: &JitterConfig) -> i64 {
    let g = i64::from(config.granularity_ns.max(1));
    ts_ns.div_euclid(g) * g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_model_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                sample_timestamp_error(&JitterConfig::none(), &mut rng),
                Nanos::ZERO
            );
        }
    }

    #[test]
    fn errors_quantized_to_granularity() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = JitterConfig::default();
        for _ in 0..1000 {
            let e = sample_timestamp_error(&cfg, &mut rng);
            assert_eq!(e.as_nanos() % 8, 0, "unquantized error {e}");
        }
    }

    #[test]
    fn error_distribution_is_centered_and_scaled() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = JitterConfig {
            sigma_ns: 20.0,
            granularity_ns: 1,
        };
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_timestamp_error(&cfg, &mut rng).as_nanos() as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 20.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn quantize_floors_to_counter_tick() {
        let cfg = JitterConfig::default();
        assert_eq!(quantize(15, &cfg), 8);
        assert_eq!(quantize(16, &cfg), 16);
        assert_eq!(quantize(-3, &cfg), -8);
    }
}
