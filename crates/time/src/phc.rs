//! PTP hardware clock (PHC) model.
//!
//! Models the free-running-but-adjustable counter inside a NIC such as the
//! Intel I210: it is driven by the NIC's oscillator and exposes the same
//! adjustment knobs the Linux PHC infrastructure exposes to `ptp4l`:
//!
//! * `adj_frequency` — set a frequency correction (like `clock_adjtime`
//!   with `ADJ_FREQUENCY`), clamped to the hardware's adjustment range;
//! * `step` — apply a phase step (like `ADJ_SETOFFSET`);
//! * `set_oscillator_deviation` — *simulation-only* hook used when the
//!   underlying oscillator wanders.
//!
//! The clock is a piecewise-linear map from true time to clock time. Every
//! adjustment re-anchors the segment so readings are continuous (except
//! across explicit steps) and strictly increasing while the total rate is
//! positive.

use crate::units::{ClockTime, Nanos, Ppb, SimTime};

/// Hardware frequency-adjustment range of the modeled PHC, in ppb.
///
/// The Intel I210 supports a wide adjustment range; `ptp4l` additionally
/// clamps its servo to ±`max_frequency` (default 900 000 ppb = 900 ppm),
/// which is what effectively bounds the closed loop, so we use the same
/// value as the hardware limit here.
pub const PHC_MAX_ADJ_PPB: Ppb = 900_000.0;

/// A simulated PTP hardware clock.
///
/// # Examples
///
/// ```
/// use tsn_time::{Phc, SimTime, Nanos, ClockTime};
/// let mut phc = Phc::new(ClockTime::ZERO, 0.0);
/// // +1000 ppb: gains 1 µs per true second.
/// phc.adj_frequency(SimTime::ZERO, 1_000.0);
/// let t = SimTime::from_secs(1);
/// assert_eq!(phc.now(t), ClockTime::from_nanos(1_000_001_000));
/// ```
#[derive(Debug, Clone)]
pub struct Phc {
    anchor_true: SimTime,
    /// Clock reading at `anchor_true`, in (fractional) nanoseconds.
    anchor_clock_ns: f64,
    /// Oscillator deviation from nominal, ppb (simulation ground truth).
    osc_deviation_ppb: Ppb,
    /// Servo-commanded frequency adjustment, ppb.
    freq_adj_ppb: Ppb,
    /// Largest reading handed out so far, to enforce monotonicity across
    /// re-anchoring rounding.
    high_water_ns: i64,
    /// Monotonicity enforcement: `now()` never returns less than a
    /// previously returned reading unless an explicit negative `step`
    /// occurred.
    monotonic: bool,
}

impl Phc {
    /// Creates a PHC reading `epoch` at true time zero, with the given
    /// oscillator deviation and no frequency adjustment.
    pub fn new(epoch: ClockTime, osc_deviation_ppb: Ppb) -> Self {
        Phc {
            anchor_true: SimTime::ZERO,
            anchor_clock_ns: epoch.as_nanos() as f64,
            osc_deviation_ppb,
            freq_adj_ppb: 0.0,
            high_water_ns: i64::MIN,
            monotonic: true,
        }
    }

    /// Total rate: clock nanoseconds per true nanosecond.
    ///
    /// Matches how Linux applies `ADJ_FREQUENCY` on top of the oscillator:
    /// the correction scales the oscillator tick, so the factors multiply.
    pub fn rate(&self) -> f64 {
        (1.0 + self.osc_deviation_ppb * 1e-9) * (1.0 + self.freq_adj_ppb * 1e-9)
    }

    /// Reads the clock at true time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last adjustment (the simulation must not
    /// read clocks in its past).
    pub fn now(&mut self, t: SimTime) -> ClockTime {
        let reading = self.raw_reading(t);
        if self.monotonic && reading < self.high_water_ns {
            return ClockTime::from_nanos(self.high_water_ns);
        }
        self.high_water_ns = reading;
        ClockTime::from_nanos(reading)
    }

    fn raw_reading(&self, t: SimTime) -> i64 {
        assert!(
            t >= self.anchor_true,
            "clock read at {t} before last adjustment at {}",
            self.anchor_true
        );
        let dt = (t - self.anchor_true).as_nanos() as f64;
        (self.anchor_clock_ns + dt * self.rate()).round() as i64
    }

    /// Sets the servo frequency adjustment at true time `t`, clamped to
    /// [`PHC_MAX_ADJ_PPB`]. Returns the applied (possibly clamped) value.
    pub fn adj_frequency(&mut self, t: SimTime, ppb: Ppb) -> Ppb {
        let applied = ppb.clamp(-PHC_MAX_ADJ_PPB, PHC_MAX_ADJ_PPB);
        self.re_anchor(t);
        self.freq_adj_ppb = applied;
        applied
    }

    /// Applies a phase step of `delta` at true time `t`.
    ///
    /// A negative step makes the clock non-monotonic at this instant, which
    /// is exactly what stepping a real PHC does.
    pub fn step(&mut self, t: SimTime, delta: Nanos) {
        self.re_anchor(t);
        self.anchor_clock_ns += delta.as_nanos() as f64;
        // An explicit step is allowed to move backwards.
        self.high_water_ns = i64::MIN;
    }

    /// Simulation hook: the underlying oscillator's deviation changed
    /// (wander step). Re-anchors so past readings are unaffected.
    pub fn set_oscillator_deviation(&mut self, t: SimTime, ppb: Ppb) {
        self.re_anchor(t);
        self.osc_deviation_ppb = ppb;
    }

    /// The current servo frequency adjustment in ppb.
    pub fn freq_adj_ppb(&self) -> Ppb {
        self.freq_adj_ppb
    }

    /// The oscillator deviation in ppb (simulation ground truth; a real
    /// `ptp4l` cannot observe this).
    pub fn osc_deviation_ppb(&self) -> Ppb {
        self.osc_deviation_ppb
    }

    /// Ground-truth offset of this clock from true time at `t`, for
    /// measurement and assertions (not visible to protocol code).
    pub fn true_offset(&mut self, t: SimTime) -> Nanos {
        Nanos::from_nanos(self.now(t).as_nanos() - t.as_nanos() as i64)
    }

    /// True time at which this clock will read `target`, assuming no
    /// further adjustments (the NIC launch-time comparator works the same
    /// way: it compares the free-running counter against the launch time,
    /// so servo adjustments between now and the launch shift the true
    /// launch instant slightly).
    ///
    /// Returns `None` if the clock already reads at or past `target` at
    /// `now` — the ETF qdisc treats that as an invalid/missed deadline.
    pub fn when_reads(&mut self, now: SimTime, target: ClockTime) -> Option<SimTime> {
        let current = self.now(now);
        if current >= target {
            return None;
        }
        let remaining_clock_ns = (target - current).as_nanos() as f64;
        let true_delta = (remaining_clock_ns / self.rate()).ceil() as i64;
        Some(now + Nanos::from_nanos(true_delta))
    }

    fn re_anchor(&mut self, t: SimTime) {
        assert!(
            t >= self.anchor_true,
            "clock adjusted at {t} before last adjustment at {}",
            self.anchor_true
        );
        let dt = (t - self.anchor_true).as_nanos() as f64;
        self.anchor_clock_ns += dt * self.rate();
        self.anchor_true = t;
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Read(u64),
        AdjFreq(u64, f64),
        WanderTo(u64, f64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..1_000_000_000).prop_map(Op::Read),
            (0u64..1_000_000_000, -900_000.0f64..900_000.0).prop_map(|(t, p)| Op::AdjFreq(t, p)),
            (0u64..1_000_000_000, -5_000.0f64..5_000.0).prop_map(|(t, p)| Op::WanderTo(t, p)),
        ]
    }

    proptest! {
        /// Readings never go backwards under any sequence of frequency
        /// adjustments and wander steps (only explicit `step` may move a
        /// clock backwards).
        #[test]
        fn monotone_under_adjustments(mut ops in proptest::collection::vec(arb_op(), 1..50)) {
            // Apply operations in time order.
            ops.sort_by_key(|op| match op {
                Op::Read(t) | Op::AdjFreq(t, _) | Op::WanderTo(t, _) => *t,
            });
            let mut phc = Phc::new(ClockTime::ZERO, 1_000.0);
            let mut last = ClockTime::from_nanos(i64::MIN);
            for op in ops {
                match op {
                    Op::Read(t) => {
                        let now = phc.now(SimTime::from_nanos(t));
                        prop_assert!(now >= last, "clock went backwards");
                        last = now;
                    }
                    Op::AdjFreq(t, ppb) => {
                        phc.adj_frequency(SimTime::from_nanos(t), ppb);
                    }
                    Op::WanderTo(t, ppb) => {
                        phc.set_oscillator_deviation(SimTime::from_nanos(t), ppb);
                    }
                }
            }
        }

        /// Readings are continuous across adjustments: adjusting at time
        /// t never changes the reading at t by more than rounding.
        #[test]
        fn continuous_across_adjustment(
            t in 1u64..1_000_000_000,
            ppb in -900_000.0f64..900_000.0,
        ) {
            let mut phc = Phc::new(ClockTime::ZERO, 2_500.0);
            let at = SimTime::from_nanos(t);
            let before = phc.now(at);
            phc.adj_frequency(at, ppb);
            let after = phc.now(at);
            prop_assert!((after - before).abs() <= Nanos::from_nanos(1));
        }

        /// `when_reads` inverts `now` to within rounding.
        #[test]
        fn when_reads_is_inverse(
            dev in -100_000.0f64..100_000.0,
            target_delta in 1i64..10_000_000_000,
        ) {
            let mut phc = Phc::new(ClockTime::ZERO, dev);
            let now = SimTime::from_secs(1);
            let target = phc.now(now) + Nanos::from_nanos(target_delta);
            let when = phc.when_reads(now, target).expect("future target");
            let reading = phc.now(when);
            prop_assert!(reading >= target);
            prop_assert!((reading - target).as_nanos() <= 2);
        }
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for Phc {
    fn save_state(&self, w: &mut Writer) {
        self.anchor_true.put(w);
        self.anchor_clock_ns.put(w);
        self.osc_deviation_ppb.put(w);
        self.freq_adj_ppb.put(w);
        self.high_water_ns.put(w);
        self.monotonic.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.anchor_true = Snap::get(r)?;
        self.anchor_clock_ns = Snap::get(r)?;
        self.osc_deviation_ppb = Snap::get(r)?;
        self.freq_adj_ppb = Snap::get(r)?;
        self.high_water_ns = Snap::get(r)?;
        self.monotonic = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let mut phc = Phc::new(ClockTime::ZERO, 0.0);
        let t = SimTime::from_secs(3600);
        assert_eq!(phc.now(t).as_nanos(), 3_600_000_000_000);
    }

    #[test]
    fn drifting_clock_gains_proportionally() {
        // +5 ppm gains 5 µs per second.
        let mut phc = Phc::new(ClockTime::ZERO, 5_000.0);
        let t = SimTime::from_secs(1);
        assert_eq!(phc.now(t).as_nanos(), 1_000_005_000);
        assert_eq!(phc.true_offset(t), Nanos::from_micros(5));
    }

    #[test]
    fn frequency_adjustment_compensates_drift() {
        let mut phc = Phc::new(ClockTime::ZERO, 5_000.0);
        // Compensation is multiplicative: (1+5e-6)(1+a·1e-9) = 1
        let comp = (1.0 / (1.0 + 5e-6) - 1.0) * 1e9;
        phc.adj_frequency(SimTime::ZERO, comp);
        let t = SimTime::from_secs(1000);
        let off = phc.true_offset(t).as_nanos();
        assert!(off.abs() <= 1, "residual offset {off} ns");
    }

    #[test]
    fn adjustment_is_clamped() {
        let mut phc = Phc::new(ClockTime::ZERO, 0.0);
        let applied = phc.adj_frequency(SimTime::ZERO, 2_000_000.0);
        assert_eq!(applied, PHC_MAX_ADJ_PPB);
        let applied = phc.adj_frequency(SimTime::ZERO, -2_000_000.0);
        assert_eq!(applied, -PHC_MAX_ADJ_PPB);
    }

    #[test]
    fn readings_continuous_across_adjustment() {
        let mut phc = Phc::new(ClockTime::ZERO, 3_000.0);
        let t1 = SimTime::from_millis(500);
        let before = phc.now(t1);
        phc.adj_frequency(t1, -100_000.0);
        let after = phc.now(t1);
        assert!((after - before).abs() <= Nanos::from_nanos(1));
    }

    #[test]
    fn step_shifts_phase() {
        let mut phc = Phc::new(ClockTime::ZERO, 0.0);
        let t = SimTime::from_secs(1);
        phc.step(t, Nanos::from_micros(-24));
        assert_eq!(phc.now(t).as_nanos(), 1_000_000_000 - 24_000);
    }

    #[test]
    fn monotone_under_positive_rate() {
        let mut phc = Phc::new(ClockTime::ZERO, -4_000.0);
        let mut last = ClockTime::from_nanos(i64::MIN);
        for ms in 0..1000 {
            let t = SimTime::from_millis(ms);
            if ms % 100 == 0 {
                phc.adj_frequency(t, (ms as f64) * 7.0 - 3500.0);
            }
            let now = phc.now(t);
            assert!(now >= last, "clock went backwards at {ms} ms");
            last = now;
        }
    }

    #[test]
    fn wander_update_preserves_continuity() {
        let mut phc = Phc::new(ClockTime::ZERO, 1_000.0);
        let t = SimTime::from_secs(10);
        let before = phc.now(t);
        phc.set_oscillator_deviation(t, -1_000.0);
        assert!((phc.now(t) - before).abs() <= Nanos::from_nanos(1));
        // After the change the clock runs slow.
        let t2 = SimTime::from_secs(11);
        let gained = phc.now(t2) - before;
        assert!((gained.as_nanos() - (1_000_000_000 - 1_000)).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "before last adjustment")]
    fn reading_in_past_of_adjustment_panics() {
        let mut phc = Phc::new(ClockTime::ZERO, 0.0);
        phc.adj_frequency(SimTime::from_secs(5), 10.0);
        let _ = phc.now(SimTime::from_secs(4));
    }

    #[test]
    fn when_reads_inverts_the_clock() {
        let mut phc = Phc::new(ClockTime::ZERO, 5_000.0);
        let now = SimTime::from_secs(1);
        let target = ClockTime::from_nanos(2_000_000_000);
        let when = phc.when_reads(now, target).expect("target in future");
        // Verify: reading at the returned instant is (just past) the target.
        let reading = phc.now(when);
        assert!(reading >= target);
        assert!((reading - target).as_nanos() <= 2);
    }

    #[test]
    fn when_reads_past_target_is_none() {
        let mut phc = Phc::new(ClockTime::ZERO, 0.0);
        let now = SimTime::from_secs(2);
        assert!(phc.when_reads(now, ClockTime::from_nanos(1)).is_none());
    }

    #[test]
    fn epoch_offset_respected() {
        let mut phc = Phc::new(ClockTime::from_nanos(1_000_000), 0.0);
        assert_eq!(phc.now(SimTime::ZERO).as_nanos(), 1_000_000);
    }
}
