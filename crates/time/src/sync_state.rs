//! Explicit degradation state of a disciplined clock.
//!
//! The paper's aggregator silently *skips* the adjustment when fewer
//! than `min_inputs` fresh valid offsets are available. Telecom-profile
//! clocks (ITU-T G.8262 holdover, IEEE 1588 §9.2 free-run) make that
//! degradation explicit instead: the clock first *holds over* on its
//! last frequency estimate, then — once the holdover budget is spent —
//! is declared free-running until synchronization is re-acquired. This
//! module provides the shared three-state vocabulary; `tsn-fta` drives
//! the transitions.

use serde::{Deserialize, Serialize};
use std::fmt;
use tsn_snapshot::{Reader, Snap, SnapError, Writer};

/// Degradation state of the aggregated `CLOCK_SYNCTIME` discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncState {
    /// Fresh valid offsets ≥ `min_inputs`: the clock is actively
    /// disciplined by the fault-tolerant aggregate.
    Synchronized,
    /// Inputs ran dry; the clock coasts on the last PI frequency
    /// estimate within a bounded holdover budget.
    Holdover,
    /// The holdover budget expired; the clock is free-running and its
    /// error is no longer bounded by the paper's Π algebra.
    Freerun,
}

impl SyncState {
    /// Stable lower-case name used in artifacts and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SyncState::Synchronized => "synchronized",
            SyncState::Holdover => "holdover",
            SyncState::Freerun => "freerun",
        }
    }

    /// Parses the stable name produced by [`SyncState::name`].
    pub fn parse(s: &str) -> Option<SyncState> {
        match s {
            "synchronized" => Some(SyncState::Synchronized),
            "holdover" => Some(SyncState::Holdover),
            "freerun" => Some(SyncState::Freerun),
            _ => None,
        }
    }

    /// `true` in any state other than [`SyncState::Synchronized`].
    pub fn is_degraded(&self) -> bool {
        !matches!(self, SyncState::Synchronized)
    }

    /// `true` when `self → to` is a legal transition of the degradation
    /// machine: Synchronized → Holdover, Holdover → Freerun, and
    /// re-acquisition from either degraded state back to Synchronized.
    pub fn can_transition_to(&self, to: SyncState) -> bool {
        matches!(
            (self, to),
            (SyncState::Synchronized, SyncState::Holdover)
                | (SyncState::Holdover, SyncState::Freerun)
                | (SyncState::Holdover, SyncState::Synchronized)
                | (SyncState::Freerun, SyncState::Synchronized)
        )
    }
}

impl fmt::Display for SyncState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Snap for SyncState {
    fn put(&self, w: &mut Writer) {
        let tag: u8 = match self {
            SyncState::Synchronized => 0,
            SyncState::Holdover => 1,
            SyncState::Freerun => 2,
        };
        tag.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::get(r)? {
            0 => Ok(SyncState::Synchronized),
            1 => Ok(SyncState::Holdover),
            2 => Ok(SyncState::Freerun),
            _ => Err(SnapError::Malformed("sync state discriminant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in [
            SyncState::Synchronized,
            SyncState::Holdover,
            SyncState::Freerun,
        ] {
            assert_eq!(SyncState::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(SyncState::parse("locked"), None);
    }

    #[test]
    fn degradation_edges() {
        use SyncState::*;
        assert!(Synchronized.can_transition_to(Holdover));
        assert!(Holdover.can_transition_to(Freerun));
        assert!(Holdover.can_transition_to(Synchronized));
        assert!(Freerun.can_transition_to(Synchronized));
        // The machine never degrades straight to free-run and never
        // re-enters holdover from free-run.
        assert!(!Synchronized.can_transition_to(Freerun));
        assert!(!Freerun.can_transition_to(Holdover));
        assert!(!Synchronized.can_transition_to(Synchronized));
    }

    #[test]
    fn degraded_predicate() {
        assert!(!SyncState::Synchronized.is_degraded());
        assert!(SyncState::Holdover.is_degraded());
        assert!(SyncState::Freerun.is_degraded());
    }

    #[test]
    fn snap_roundtrip() {
        use tsn_snapshot::{Reader, Writer};
        for s in [
            SyncState::Synchronized,
            SyncState::Holdover,
            SyncState::Freerun,
        ] {
            let mut w = Writer::new();
            s.put(&mut w);
            let bytes = w.into_bytes();
            let got = SyncState::get(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(got, s);
        }
    }
}
