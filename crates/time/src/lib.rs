//! # tsn-time
//!
//! Clock models for the `clocksync` reproduction of *IEEE 802.1AS
//! Multi-Domain Aggregation for Virtualized Distributed Real-Time Systems*
//! (Ruh, Steiner, Fohler — DSN-S 2023).
//!
//! The crate provides the time substrate every other crate builds on:
//!
//! * [`SimTime`], [`Nanos`], [`ClockTime`] — the three distinct time unit
//!   newtypes (true simulation time, durations, and per-clock readings);
//! * [`Oscillator`] — a free-running crystal with static deviation and
//!   random-walk wander;
//! * [`Phc`] — a PTP hardware clock (Intel I210-style): an adjustable
//!   piecewise-linear clock driven by an oscillator;
//! * [`PiServo`] — LinuxPTP's PI servo, including first-sample frequency
//!   estimation, step thresholds, and the ±900 ppm output clamp;
//! * [`JitterConfig`] — the hardware timestamping error model;
//! * [`SyncState`] — the explicit Synchronized → Holdover → Freerun
//!   degradation vocabulary driven by `tsn-fta`'s aggregator.
//!
//! # Example
//!
//! Discipline a drifting PHC against true time with the PI servo:
//!
//! ```
//! use tsn_time::{Phc, PiServo, ServoConfig, ServoOutput, ClockTime, Nanos, SimTime};
//!
//! let s = Nanos::from_millis(125);
//! let mut phc = Phc::new(ClockTime::ZERO, 4_000.0); // +4 ppm oscillator
//! let mut servo = PiServo::new(ServoConfig::default(), s);
//! let mut t = SimTime::ZERO;
//! for _ in 0..200 {
//!     t += s;
//!     let offset = phc.true_offset(t);
//!     let local = phc.now(t);
//!     match servo.sample(offset, local) {
//!         ServoOutput::Gathering => {}
//!         ServoOutput::Step { delta, freq_adj_ppb } => {
//!             phc.step(t, delta);
//!             phc.adj_frequency(t, freq_adj_ppb);
//!         }
//!         ServoOutput::Adjust { freq_adj_ppb } => {
//!             phc.adj_frequency(t, freq_adj_ppb);
//!         }
//!     }
//! }
//! assert!(phc.true_offset(t).abs() < Nanos::from_nanos(50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jitter;
mod oscillator;
mod phc;
mod servo;
mod sync_state;
mod units;

pub use jitter::{quantize, sample_timestamp_error, JitterConfig};
pub use oscillator::{Oscillator, OscillatorConfig};
pub use phc::{Phc, PHC_MAX_ADJ_PPB};
pub use servo::{PiServo, ServoConfig, ServoOutput, ServoState};
pub use sync_state::SyncState;
pub use units::{ClockTime, Nanos, Ppb, SimTime};
