//! Free-running oscillator model.
//!
//! Every clock in the testbed — NIC PTP hardware clocks, host TSC-derived
//! system clocks, switch local clocks — is ultimately driven by a crystal
//! oscillator with a static frequency deviation (manufacturing tolerance)
//! plus slow stochastic *wander* (temperature, aging). IEEE 802.1AS assumes
//! a maximum drift rate of ±5 ppm for time-aware systems, which is the
//! bound the paper uses to derive the drift offset Γ = 2·r_max·S.

use crate::units::Ppb;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for an [`Oscillator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OscillatorConfig {
    /// Maximum absolute static frequency deviation, in ppb. The initial
    /// deviation is drawn uniformly from `[-max_static_ppb, max_static_ppb]`.
    ///
    /// IEEE 802.1AS-2020 clause B.1.1 bounds this at ±100 ppm for
    /// conformance but assumes ±5 ppm ("5 ppm max drift rate referenced in
    /// the literature") when deriving synchronization bounds; the paper
    /// uses r_max = 5 ppm.
    pub max_static_ppb: Ppb,
    /// Standard deviation of each random-walk wander step, in ppb.
    pub wander_step_ppb: Ppb,
    /// Wander never moves the total deviation beyond
    /// `±(max_static_ppb + max_wander_excursion_ppb)`.
    pub max_wander_excursion_ppb: Ppb,
}

impl Default for OscillatorConfig {
    fn default() -> Self {
        OscillatorConfig {
            max_static_ppb: 5_000.0, // ±5 ppm
            wander_step_ppb: 5.0,
            max_wander_excursion_ppb: 200.0,
        }
    }
}

impl OscillatorConfig {
    /// An ideal oscillator with zero deviation and no wander. Useful as a
    /// reference clock in tests.
    pub fn ideal() -> Self {
        OscillatorConfig {
            max_static_ppb: 0.0,
            wander_step_ppb: 0.0,
            max_wander_excursion_ppb: 0.0,
        }
    }
}

/// A free-running oscillator: static deviation plus random-walk wander.
///
/// The oscillator's *rate* is the ratio of oscillator seconds to true
/// seconds minus one, expressed in ppb. A rate of +5000 ppb means the
/// oscillator gains 5 µs per true second.
///
/// Wander evolves only when [`Oscillator::step_wander`] is called; the
/// simulation schedules those steps at a fixed true-time cadence so runs
/// are deterministic for a given seed.
///
/// # Examples
///
/// ```
/// use tsn_time::{Oscillator, OscillatorConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let osc = Oscillator::new(OscillatorConfig::default(), &mut rng);
/// assert!(osc.deviation_ppb().abs() <= 5_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct Oscillator {
    config: OscillatorConfig,
    static_ppb: Ppb,
    wander_ppb: Ppb,
}

impl Oscillator {
    /// Creates an oscillator with a random static deviation drawn from the
    /// configured tolerance.
    pub fn new<R: Rng + ?Sized>(config: OscillatorConfig, rng: &mut R) -> Self {
        let static_ppb = if config.max_static_ppb > 0.0 {
            rng.gen_range(-config.max_static_ppb..=config.max_static_ppb)
        } else {
            0.0
        };
        Oscillator {
            config,
            static_ppb,
            wander_ppb: 0.0,
        }
    }

    /// Creates an oscillator with an exact static deviation (for tests and
    /// calibrated scenarios).
    pub fn with_deviation(config: OscillatorConfig, static_ppb: Ppb) -> Self {
        Oscillator {
            config,
            static_ppb,
            wander_ppb: 0.0,
        }
    }

    /// Current total frequency deviation from nominal, in ppb.
    pub fn deviation_ppb(&self) -> Ppb {
        self.static_ppb + self.wander_ppb
    }

    /// Current rate multiplier: oscillator seconds per true second.
    pub fn rate(&self) -> f64 {
        1.0 + self.deviation_ppb() * 1e-9
    }

    /// Advances the random-walk wander by one step. Returns the new total
    /// deviation in ppb.
    pub fn step_wander<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Ppb {
        if self.config.wander_step_ppb > 0.0 {
            // Box-Muller style normal sample from two uniforms; rand's
            // Standard distribution lacks normals without rand_distr, so we
            // synthesize one (sum of 12 uniforms, Irwin-Hall ~ N(0,1)).
            let mut z = -6.0;
            for _ in 0..12 {
                z += rng.gen::<f64>();
            }
            self.wander_ppb += z * self.config.wander_step_ppb;
            let lim = self.config.max_wander_excursion_ppb;
            self.wander_ppb = self.wander_ppb.clamp(-lim, lim);
        }
        self.deviation_ppb()
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for Oscillator {
    fn save_state(&self, w: &mut Writer) {
        self.static_ppb.put(w);
        self.wander_ppb.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.static_ppb = Snap::get(r)?;
        self.wander_ppb = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_oscillator_has_unit_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let osc = Oscillator::new(OscillatorConfig::ideal(), &mut rng);
        assert_eq!(osc.deviation_ppb(), 0.0);
        assert_eq!(osc.rate(), 1.0);
    }

    #[test]
    fn static_deviation_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let osc = Oscillator::new(OscillatorConfig::default(), &mut rng);
            assert!(osc.deviation_ppb().abs() <= 5_000.0);
        }
    }

    #[test]
    fn wander_stays_within_excursion_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = OscillatorConfig {
            max_static_ppb: 0.0,
            wander_step_ppb: 50.0,
            max_wander_excursion_ppb: 100.0,
        };
        let mut osc = Oscillator::new(cfg, &mut rng);
        for _ in 0..10_000 {
            let dev = osc.step_wander(&mut rng);
            assert!(dev.abs() <= 100.0, "wander escaped: {dev}");
        }
    }

    #[test]
    fn wander_actually_moves() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = OscillatorConfig {
            max_static_ppb: 0.0,
            wander_step_ppb: 10.0,
            max_wander_excursion_ppb: 1000.0,
        };
        let mut osc = Oscillator::new(cfg, &mut rng);
        let mut moved = false;
        for _ in 0..100 {
            if osc.step_wander(&mut rng).abs() > 1.0 {
                moved = true;
            }
        }
        assert!(moved);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut osc = Oscillator::new(OscillatorConfig::default(), &mut rng);
            (0..50)
                .map(|_| osc.step_wander(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn with_deviation_is_exact() {
        let osc = Oscillator::with_deviation(OscillatorConfig::default(), 2_500.0);
        assert_eq!(osc.deviation_ppb(), 2_500.0);
        assert!((osc.rate() - 1.000_002_5).abs() < 1e-12);
    }
}
