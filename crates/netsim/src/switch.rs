//! VLAN-aware TSN switch fabric model.
//!
//! Models the *relay function* of the integrated Linux TSN switches: VLAN
//! membership filtering, a static filtering database for multicast groups
//! (the measurement VLAN uses static entries so probe paths are known, per
//! the paper's methodology), flooding within a VLAN as fallback, and a
//! store-and-forward residence delay per hop.
//!
//! gPTP frames (destination `01:80:C2:00:00:0E`) are link-local and are
//! **not** forwarded by the fabric: the per-domain time-aware bridge
//! engines in `tsn-gptp` receive and regenerate them with updated
//! correction fields.

use crate::frame::{EthernetFrame, MacAddr};
use crate::topology::{DelayModel, PortNo};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use tsn_time::Nanos;

/// VLAN id type alias (12-bit).
pub type Vid = u16;

/// Static filtering database and VLAN membership of one switch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Fdb {
    /// Ports that are members of each VLAN.
    vlan_members: BTreeMap<Vid, BTreeSet<PortNo>>,
    /// Static multicast entries: (vid, group) → egress ports.
    static_entries: BTreeMap<(Vid, MacAddr), BTreeSet<PortNo>>,
}

impl Fdb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Fdb::default()
    }

    /// Adds `port` to `vid`'s member set.
    pub fn add_vlan_member(&mut self, vid: Vid, port: PortNo) {
        self.vlan_members.entry(vid).or_default().insert(port);
    }

    /// Installs a static multicast entry restricting `(vid, group)` to the
    /// given egress ports.
    pub fn add_static_entry(&mut self, vid: Vid, group: MacAddr, ports: &[PortNo]) {
        self.static_entries
            .entry((vid, group))
            .or_default()
            .extend(ports.iter().copied());
    }

    /// Ports member of `vid` (empty if the VLAN is not configured).
    pub fn vlan_members(&self, vid: Vid) -> impl Iterator<Item = PortNo> + '_ {
        self.vlan_members.get(&vid).into_iter().flatten().copied()
    }

    fn static_ports(&self, vid: Vid, group: MacAddr) -> Option<&BTreeSet<PortNo>> {
        self.static_entries.get(&(vid, group))
    }
}

/// Store-and-forward switch model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    /// Human-readable name (e.g. `sw1`).
    pub name: String,
    /// Residence (processing + queuing) delay per forwarded frame.
    pub residence: DelayModel,
    /// Filtering database.
    pub fdb: Fdb,
    /// Untagged default VLAN for ingress of untagged frames.
    pub default_vid: Vid,
}

impl Switch {
    /// Creates a switch with the given residence model and default VLAN 1.
    pub fn new(name: &str, residence: DelayModel) -> Self {
        Switch {
            name: name.to_owned(),
            residence,
            fdb: Fdb::new(),
            default_vid: 1,
        }
    }

    /// Computes the egress set for a frame entering on `ingress`.
    ///
    /// Returns `(egress port, residence delay)` pairs; an empty vector
    /// means the frame is filtered (or link-local).
    pub fn forward<R: Rng + ?Sized>(
        &self,
        ingress: PortNo,
        frame: &EthernetFrame,
        rng: &mut R,
    ) -> Vec<(PortNo, Nanos)> {
        // Link-local (gPTP) frames terminate at the bridge.
        if frame.dst == MacAddr::GPTP_MULTICAST {
            return Vec::new();
        }
        let vid = frame.vlan.map_or(self.default_vid, |t| t.vid);
        let members: BTreeSet<PortNo> = self.fdb.vlan_members(vid).collect();
        if !members.contains(&ingress) {
            return Vec::new(); // ingress filtering: not a member
        }
        let egress: Vec<PortNo> = match self.fdb.static_ports(vid, frame.dst) {
            Some(ports) => ports
                .iter()
                .copied()
                .filter(|p| *p != ingress && members.contains(p))
                .collect(),
            None => members.into_iter().filter(|p| *p != ingress).collect(),
        };
        egress
            .into_iter()
            .map(|p| (p, self.residence.sample(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ethertype, VlanTag};
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(dst: MacAddr, vlan: Option<VlanTag>) -> EthernetFrame {
        EthernetFrame {
            dst,
            src: MacAddr::for_nic(9),
            vlan,
            ethertype: ethertype::MEASUREMENT,
            payload: Bytes::from_static(b"probe"),
        }
    }

    fn switch_with_vlan(vid: Vid, ports: &[u8]) -> Switch {
        let mut sw = Switch::new("sw", DelayModel::constant(Nanos::from_micros(1)));
        for &p in ports {
            sw.fdb.add_vlan_member(vid, PortNo(p));
        }
        sw
    }

    #[test]
    fn floods_within_vlan_except_ingress() {
        let sw = switch_with_vlan(100, &[0, 1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(
            PortNo(0),
            &frame(MacAddr::PTP_MULTICAST, Some(VlanTag::new(6, 100))),
            &mut rng,
        );
        let ports: Vec<u8> = out.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ports, vec![1, 2, 3]);
    }

    #[test]
    fn non_member_vlan_filtered() {
        let sw = switch_with_vlan(100, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(
            PortNo(0),
            &frame(MacAddr::PTP_MULTICAST, Some(VlanTag::new(6, 200))),
            &mut rng,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn ingress_must_be_member() {
        let sw = switch_with_vlan(100, &[1, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(
            PortNo(0),
            &frame(MacAddr::PTP_MULTICAST, Some(VlanTag::new(6, 100))),
            &mut rng,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn static_entry_restricts_egress() {
        let mut sw = switch_with_vlan(100, &[0, 1, 2, 3]);
        sw.fdb
            .add_static_entry(100, MacAddr::PTP_MULTICAST, &[PortNo(2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(
            PortNo(0),
            &frame(MacAddr::PTP_MULTICAST, Some(VlanTag::new(6, 100))),
            &mut rng,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(2));
    }

    #[test]
    fn gptp_multicast_is_link_local() {
        let sw = switch_with_vlan(1, &[0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(PortNo(0), &frame(MacAddr::GPTP_MULTICAST, None), &mut rng);
        assert!(out.is_empty());
    }

    #[test]
    fn untagged_uses_default_vid() {
        let mut sw = switch_with_vlan(1, &[0, 1]);
        sw.default_vid = 1;
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(PortNo(0), &frame(MacAddr::BROADCAST, None), &mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PortNo(1));
    }

    #[test]
    fn residence_delay_attached() {
        let sw = switch_with_vlan(1, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(PortNo(0), &frame(MacAddr::BROADCAST, None), &mut rng);
        assert_eq!(out[0].1, Nanos::from_micros(1));
    }

    /// A VLAN configured with no members admits nothing: even the
    /// flood fallback yields an empty egress set.
    #[test]
    fn zero_member_vlan_floods_nowhere() {
        let sw = switch_with_vlan(100, &[]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sw.forward(
            PortNo(0),
            &frame(MacAddr::PTP_MULTICAST, Some(VlanTag::new(6, 100))),
            &mut rng,
        );
        assert!(out.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary switch: a handful of VLANs with random member
        /// sets and an optional static entry for the probe group.
        fn arb_switch() -> impl Strategy<Value = Switch> {
            (
                proptest::collection::vec((1u16..8, proptest::collection::vec(0u8..8, 0..6)), 0..4),
                proptest::option::of((1u16..8, proptest::collection::vec(0u8..8, 0..4))),
                1u16..8,
            )
                .prop_map(|(vlans, static_entry, default_vid)| {
                    let mut sw = Switch::new("prop", DelayModel::constant(Nanos::from_micros(1)));
                    sw.default_vid = default_vid;
                    for (vid, ports) in vlans {
                        for p in ports {
                            sw.fdb.add_vlan_member(vid, PortNo(p));
                        }
                    }
                    if let Some((vid, ports)) = static_entry {
                        let ports: Vec<PortNo> = ports.into_iter().map(PortNo).collect();
                        sw.fdb.add_static_entry(vid, MacAddr::PTP_MULTICAST, &ports);
                    }
                    sw
                })
        }

        fn arb_frame() -> impl Strategy<Value = EthernetFrame> {
            (
                prop_oneof![
                    Just(MacAddr::PTP_MULTICAST),
                    Just(MacAddr::BROADCAST),
                    Just(MacAddr::GPTP_MULTICAST),
                    (0u32..16).prop_map(MacAddr::for_nic),
                ],
                proptest::option::of((0u8..8, 1u16..10)),
            )
                .prop_map(|(dst, vlan)| frame(dst, vlan.map(|(pcp, vid)| VlanTag::new(pcp, vid))))
        }

        proptest! {
            /// The relay function never hairpins: no egress pair ever
            /// names the ingress port, whatever the FDB looks like.
            #[test]
            fn forward_never_returns_the_ingress_port(
                sw in arb_switch(),
                f in arb_frame(),
                ingress in 0u8..8,
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let out = sw.forward(PortNo(ingress), &f, &mut rng);
                prop_assert!(
                    out.iter().all(|(p, _)| *p != PortNo(ingress)),
                    "hairpinned back to ingress: {out:?}"
                );
            }

            /// VLAN isolation: every egress port is a member of the
            /// frame's (effective) VLAN, and a non-member ingress is
            /// always filtered — static entries cannot punch through
            /// membership.
            #[test]
            fn forward_never_leaves_the_vlan(
                sw in arb_switch(),
                f in arb_frame(),
                ingress in 0u8..8,
                seed in 0u64..1000,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let out = sw.forward(PortNo(ingress), &f, &mut rng);
                let vid = f.vlan.map_or(sw.default_vid, |t| t.vid);
                let members: Vec<PortNo> = sw.fdb.vlan_members(vid).collect();
                if !members.contains(&PortNo(ingress)) {
                    prop_assert!(out.is_empty(), "non-member ingress must filter");
                }
                for (p, _) in &out {
                    prop_assert!(
                        members.contains(p),
                        "egress {p:?} is not a member of VLAN {vid}"
                    );
                }
            }
        }
    }
}
