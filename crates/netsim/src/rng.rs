//! Deterministic per-component RNG derivation.
//!
//! A single experiment seed fans out into independent streams — one per
//! oscillator, link, fault model, etc. — so that adding a component or
//! reordering initialization does not perturb unrelated streams. Streams
//! are derived by hashing the master seed with a textual label (FNV-1a,
//! stable across platforms and Rust versions, unlike `DefaultHasher`).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use tsn_netsim::SeedSplitter;
/// use rand::Rng;
///
/// let splitter = SeedSplitter::new(42);
/// let mut a = splitter.rng("osc/dev1/nic1");
/// let mut b = splitter.rng("osc/dev1/nic2");
/// let mut a2 = SeedSplitter::new(42).rng("osc/dev1/nic1");
/// let (x, y, x2): (u64, u64, u64) = (a.gen(), b.gen(), a2.gen());
/// assert_eq!(x, x2);   // same label, same seed → same stream
/// assert_ne!(x, y);    // different labels → independent streams
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Creates a splitter over the given master seed.
    pub const fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for a labeled stream.
    pub fn seed(&self, label: &str) -> u64 {
        // FNV-1a over the master seed bytes then the label bytes.
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        for b in self.master.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Creates the RNG for a labeled stream.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(label))
    }

    /// Creates a sub-splitter, namespacing all its labels under `label`.
    pub fn child(&self, label: &str) -> SeedSplitter {
        SeedSplitter::new(self.seed(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let s1 = SeedSplitter::new(7);
        let s2 = SeedSplitter::new(7);
        let v1: Vec<u32> = s1
            .rng("x")
            .sample_iter(rand::distributions::Standard)
            .take(10)
            .collect();
        let v2: Vec<u32> = s2
            .rng("x")
            .sample_iter(rand::distributions::Standard)
            .take(10)
            .collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn labels_are_independent() {
        let s = SeedSplitter::new(7);
        assert_ne!(s.seed("a"), s.seed("b"));
        assert_ne!(s.seed("ab"), s.seed("ba"));
    }

    #[test]
    fn master_seed_matters() {
        assert_ne!(
            SeedSplitter::new(1).seed("x"),
            SeedSplitter::new(2).seed("x")
        );
    }

    #[test]
    fn children_namespace() {
        let s = SeedSplitter::new(7);
        let c = s.child("dev1");
        assert_ne!(c.seed("nic"), s.seed("nic"));
        assert_eq!(c.master(), s.seed("dev1"));
    }
}
