//! NIC model: PHC, hardware timestamping, and ETF launch-time transmission.
//!
//! Models the clock-synchronization-relevant behavior of an Intel
//! I210-class controller:
//!
//! * a PHC disciplined by the servo (`tsn_time::Phc`);
//! * ingress/egress hardware timestamping with granularity and jitter;
//! * launch-time ("LaunchTime"/ETF qdisc) transmission: a frame handed to
//!   [`Nic::launch`] departs when the PHC reads the requested launch time,
//!   or is rejected as a deadline miss if that time has already passed —
//!   the transient fault the paper observes 347 times in 24 h.

use crate::frame::MacAddr;
use rand::Rng;
use tsn_time::{sample_timestamp_error, ClockTime, JitterConfig, Nanos, Phc, SimTime};

/// Outcome of requesting a launch-time transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOutcome {
    /// The frame will depart at this true time.
    DepartsAt(SimTime),
    /// The launch time was already in the past: the qdisc drops the frame
    /// (ETF `drop_if_late`) — a transmission deadline miss.
    DeadlineMiss,
}

/// A simulated NIC.
#[derive(Debug, Clone)]
pub struct Nic {
    /// The NIC's unicast MAC address.
    pub mac: MacAddr,
    /// The PTP hardware clock.
    pub phc: Phc,
    /// Timestamping error model.
    pub ts_jitter: JitterConfig,
    /// Line rate in bits per second (1 Gb/s for the I210).
    pub bits_per_sec: u64,
}

impl Nic {
    /// Creates a NIC with the given MAC and PHC.
    pub fn new(mac: MacAddr, phc: Phc) -> Self {
        Nic {
            mac,
            phc,
            ts_jitter: JitterConfig::default(),
            bits_per_sec: 1_000_000_000,
        }
    }

    /// Hardware receive timestamp for a frame arriving at true time `t`.
    pub fn rx_timestamp<R: Rng + ?Sized>(&mut self, t: SimTime, rng: &mut R) -> ClockTime {
        let exact = self.phc.now(t);
        exact + sample_timestamp_error(&self.ts_jitter, rng)
    }

    /// Hardware transmit timestamp for a frame departing at true time `t`.
    pub fn tx_timestamp<R: Rng + ?Sized>(&mut self, t: SimTime, rng: &mut R) -> ClockTime {
        let exact = self.phc.now(t);
        exact + sample_timestamp_error(&self.ts_jitter, rng)
    }

    /// Requests transmission at PHC time `launch` (ETF qdisc semantics).
    ///
    /// `now` is the current true time at which the qdisc dequeues the
    /// frame; if the PHC already reads at or past `launch`, the frame is
    /// dropped as a deadline miss.
    pub fn launch(&mut self, now: SimTime, launch: ClockTime) -> LaunchOutcome {
        match self.phc.when_reads(now, launch) {
            Some(t) => LaunchOutcome::DepartsAt(t),
            None => LaunchOutcome::DeadlineMiss,
        }
    }

    /// Immediate transmission (no launch time): departs after a small
    /// driver/DMA latency drawn from `[200, 1200)` ns.
    pub fn transmit_now<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> SimTime {
        now + Nanos::from_nanos(rng.gen_range(200..1200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nic() -> Nic {
        let mut n = Nic::new(MacAddr::for_nic(1), Phc::new(ClockTime::ZERO, 2_000.0));
        n.ts_jitter = JitterConfig::none();
        n
    }

    #[test]
    fn launch_in_future_departs_when_phc_reads_target() {
        let mut n = nic();
        let now = SimTime::from_millis(100);
        let launch = ClockTime::from_nanos(125_000_000);
        match n.launch(now, launch) {
            LaunchOutcome::DepartsAt(t) => {
                assert!(t > now);
                let reading = n.phc.now(t);
                assert!((reading - launch).abs() <= Nanos::from_nanos(2));
            }
            LaunchOutcome::DeadlineMiss => panic!("unexpected miss"),
        }
    }

    #[test]
    fn launch_in_past_is_deadline_miss() {
        let mut n = nic();
        let now = SimTime::from_millis(200);
        let launch = ClockTime::from_nanos(125_000_000);
        assert_eq!(n.launch(now, launch), LaunchOutcome::DeadlineMiss);
    }

    #[test]
    fn timestamps_track_phc() {
        let mut n = nic();
        let mut rng = StdRng::seed_from_u64(1);
        let t = SimTime::from_secs(1);
        let rx = n.rx_timestamp(t, &mut rng);
        // +2 ppm drift over 1 s = +2 µs.
        assert_eq!(rx.as_nanos(), 1_000_002_000);
    }

    #[test]
    fn transmit_now_has_bounded_driver_latency() {
        let mut n = nic();
        let mut rng = StdRng::seed_from_u64(2);
        let now = SimTime::from_secs(3);
        for _ in 0..100 {
            let t = n.transmit_now(now, &mut rng);
            let d = t - now;
            assert!(d >= Nanos::from_nanos(200) && d < Nanos::from_nanos(1200));
        }
    }
}
