//! Link fault models: loss, burst loss, asymmetry, and down windows.
//!
//! PTP simulation studies (Wallner, *Simulation of the IEEE 1588 PTP in
//! OMNeT++*, arXiv:1609.06771) stress that link asymmetry and frame
//! loss — not oscillator noise — dominate real-world degradation of
//! time transfer. This module adds that fault surface to the otherwise
//! ideal links of [`Topology`](crate::Topology):
//!
//! * per-link i.i.d. frame loss, optionally layered with a two-state
//!   Gilbert–Elliott burst-loss process;
//! * asymmetric extra one-way delay (breaks the symmetric-path
//!   assumption behind the peer-delay mechanism);
//! * timed link-down windows, the building block for network
//!   partitions.
//!
//! The plan ([`LinkFaultPlan`]) is pure configuration; the runtime
//! state ([`LinkFaults`]) is owned by the experiment world, which draws
//! from a dedicated RNG stream **only while a fault model is active**
//! so that enabling the plan cannot perturb the warm prefix shared with
//! fault-free runs (fork-based campaign execution stays byte-identical).

use crate::topology::LinkId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};
use tsn_time::Nanos;

/// Two-state Gilbert–Elliott burst-loss process layered on top of the
/// i.i.d. loss floor: each frame crossing advances the chain, and while
/// the chain is in its burst state frames are lost with `p_loss`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Per-crossing probability of entering the burst state.
    pub p_enter: f64,
    /// Per-crossing probability of leaving the burst state.
    pub p_exit: f64,
    /// Loss probability while in the burst state.
    pub p_loss: f64,
}

/// A timed window during which one link drops every frame.
///
/// Times are relative to the end of the warm-up (the convention of
/// `FaultSchedule`), so fault-free warm prefixes stay shareable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDownWindow {
    /// Index of the affected link ([`LinkId`]).
    pub link: usize,
    /// Window start, relative to warm-up end.
    pub from: Nanos,
    /// Window end (exclusive), relative to warm-up end.
    pub until: Nanos,
}

/// Constant extra one-way delay on one link, making its forward and
/// reverse paths asymmetric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymmetricDelay {
    /// Index of the affected link ([`LinkId`]).
    pub link: usize,
    /// Extra delay in the `a → b` direction.
    pub extra_ab: Nanos,
    /// Extra delay in the `b → a` direction.
    pub extra_ba: Nanos,
}

/// The complete link-fault configuration of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    /// i.i.d. per-crossing loss probability applied to every link.
    pub loss: f64,
    /// Optional burst-loss process applied to every link.
    pub burst: Option<BurstLoss>,
    /// Per-link asymmetric delay injections.
    pub asymmetry: Vec<AsymmetricDelay>,
    /// Timed link-down windows.
    pub down: Vec<LinkDownWindow>,
}

impl LinkFaultPlan {
    /// No link faults.
    pub fn none() -> Self {
        LinkFaultPlan {
            loss: 0.0,
            burst: None,
            asymmetry: Vec::new(),
            down: Vec::new(),
        }
    }

    /// A plan with only i.i.d. loss.
    pub fn with_loss(loss: f64) -> Self {
        LinkFaultPlan {
            loss,
            ..LinkFaultPlan::none()
        }
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.burst.is_none()
            && self
                .asymmetry
                .iter()
                .all(|a| a.extra_ab == Nanos::ZERO && a.extra_ba == Nanos::ZERO)
            && self.down.is_empty()
    }

    /// `true` when any probabilistic model (i.i.d. or burst loss) is
    /// configured — i.e. whether frame crossings consume randomness.
    pub fn draws_randomness(&self) -> bool {
        self.loss > 0.0 || self.burst.is_some()
    }

    /// Validates probabilities and windows.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} probability {p} outside [0, 1]"))
            }
        };
        prob("loss", self.loss)?;
        if self.loss >= 1.0 {
            return Err("loss probability 1.0 would sever every link".into());
        }
        if let Some(b) = &self.burst {
            prob("burst enter", b.p_enter)?;
            prob("burst exit", b.p_exit)?;
            prob("burst loss", b.p_loss)?;
        }
        for w in &self.down {
            if w.until <= w.from {
                return Err(format!(
                    "down window on link {} is empty ({:?} >= {:?})",
                    w.link, w.from, w.until
                ));
            }
        }
        for a in &self.asymmetry {
            if a.extra_ab < Nanos::ZERO || a.extra_ba < Nanos::ZERO {
                return Err(format!("negative extra delay on link {}", a.link));
            }
        }
        Ok(())
    }
}

/// Runtime link-fault state, owned by the experiment world.
///
/// The world is responsible for toggling down windows (it schedules
/// them as control events so forked continuations re-arm them) and for
/// passing its dedicated link-fault RNG stream into [`LinkFaults::drops`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    plan: LinkFaultPlan,
    /// Per-link down counters (windows may overlap; a link is down
    /// while its counter is positive).
    down: Vec<u32>,
    /// Per-link Gilbert–Elliott state: `true` while in the burst state.
    in_burst: Vec<bool>,
}

impl LinkFaults {
    /// Creates runtime state for `links` links under `plan`.
    pub fn new(plan: LinkFaultPlan, links: usize) -> Self {
        LinkFaults {
            plan,
            down: vec![0; links],
            in_burst: vec![false; links],
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }

    /// Applies one endpoint of a down window.
    pub fn set_down(&mut self, link: LinkId, down: bool) {
        let c = &mut self.down[link.0];
        if down {
            *c += 1;
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// `true` while at least one down window covers the link.
    pub fn is_down(&self, link: LinkId) -> bool {
        self.down[link.0] > 0
    }

    /// Decides whether a frame crossing `link` is lost, advancing the
    /// burst chain. Draws from `rng` only when a probabilistic loss
    /// model is configured.
    pub fn drops<R: Rng + ?Sized>(&mut self, link: LinkId, rng: &mut R) -> bool {
        if !self.plan.draws_randomness() {
            return false;
        }
        let mut p = self.plan.loss;
        if let Some(b) = self.plan.burst {
            let in_burst = self.in_burst[link.0];
            let flips = if in_burst {
                rng.gen::<f64>() < b.p_exit
            } else {
                rng.gen::<f64>() < b.p_enter
            };
            let now_burst = in_burst != flips;
            self.in_burst[link.0] = now_burst;
            if now_burst {
                p = p.max(b.p_loss);
            }
        }
        p > 0.0 && rng.gen::<f64>() < p
    }

    /// Extra one-way delay for traffic leaving the link's `a` endpoint
    /// (`toward_b = true`) or its `b` endpoint.
    pub fn extra_delay(&self, link: LinkId, toward_b: bool) -> Nanos {
        let mut extra = Nanos::ZERO;
        for a in &self.plan.asymmetry {
            if a.link == link.0 {
                extra += if toward_b { a.extra_ab } else { a.extra_ba };
            }
        }
        extra
    }
}

impl SnapState for LinkFaults {
    fn save_state(&self, w: &mut Writer) {
        self.down.put(w);
        self.in_burst.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let down: Vec<u32> = Snap::get(r)?;
        let in_burst: Vec<bool> = Snap::get(r)?;
        if down.len() != self.down.len() || in_burst.len() != self.in_burst.len() {
            return Err(SnapError::Malformed("link fault vector length"));
        }
        self.down = down;
        self.in_burst = in_burst;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noop_plan_never_draws_or_drops() {
        let mut faults = LinkFaults::new(LinkFaultPlan::none(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut witness = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!faults.drops(LinkId(0), &mut rng));
        }
        // The stream was never advanced.
        assert_eq!(rng.gen::<u64>(), witness.gen::<u64>());
    }

    #[test]
    fn iid_loss_rate_is_respected() {
        let mut faults = LinkFaults::new(LinkFaultPlan::with_loss(0.25), 1);
        let mut rng = StdRng::seed_from_u64(7);
        let lost = (0..10_000)
            .filter(|_| faults.drops(LinkId(0), &mut rng))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn burst_loss_clusters() {
        let plan = LinkFaultPlan {
            loss: 0.0,
            burst: Some(BurstLoss {
                p_enter: 0.02,
                p_exit: 0.2,
                p_loss: 0.9,
            }),
            asymmetry: Vec::new(),
            down: Vec::new(),
        };
        let mut faults = LinkFaults::new(plan, 1);
        let mut rng = StdRng::seed_from_u64(11);
        let outcomes: Vec<bool> = (0..20_000)
            .map(|_| faults.drops(LinkId(0), &mut rng))
            .collect();
        let lost = outcomes.iter().filter(|&&l| l).count();
        assert!(lost > 0, "burst model never lost a frame");
        // Burstiness: the probability a loss is followed by another loss
        // far exceeds the marginal loss rate.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let repeats = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let conditional = repeats as f64 / pairs as f64;
        let marginal = lost as f64 / outcomes.len() as f64;
        assert!(
            conditional > 2.0 * marginal,
            "losses not clustered: P(loss|loss)={conditional:.3} vs P(loss)={marginal:.3}"
        );
    }

    #[test]
    fn down_windows_nest() {
        let mut faults = LinkFaults::new(LinkFaultPlan::none(), 2);
        assert!(!faults.is_down(LinkId(0)));
        faults.set_down(LinkId(0), true);
        faults.set_down(LinkId(0), true); // overlapping second window
        assert!(faults.is_down(LinkId(0)));
        faults.set_down(LinkId(0), false);
        assert!(faults.is_down(LinkId(0)), "outer window still open");
        faults.set_down(LinkId(0), false);
        assert!(!faults.is_down(LinkId(0)));
        assert!(!faults.is_down(LinkId(1)));
    }

    #[test]
    fn asymmetric_delay_is_directional() {
        let plan = LinkFaultPlan {
            loss: 0.0,
            burst: None,
            asymmetry: vec![AsymmetricDelay {
                link: 1,
                extra_ab: Nanos::from_micros(50),
                extra_ba: Nanos::ZERO,
            }],
            down: Vec::new(),
        };
        let faults = LinkFaults::new(plan, 3);
        assert_eq!(faults.extra_delay(LinkId(1), true), Nanos::from_micros(50));
        assert_eq!(faults.extra_delay(LinkId(1), false), Nanos::ZERO);
        assert_eq!(faults.extra_delay(LinkId(0), true), Nanos::ZERO);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(LinkFaultPlan::with_loss(0.1).validate().is_ok());
        assert!(LinkFaultPlan::with_loss(-0.1).validate().is_err());
        assert!(LinkFaultPlan::with_loss(1.0).validate().is_err());
        let empty_window = LinkFaultPlan {
            down: vec![LinkDownWindow {
                link: 0,
                from: Nanos::from_secs(2),
                until: Nanos::from_secs(2),
            }],
            ..LinkFaultPlan::none()
        };
        assert!(empty_window.validate().is_err());
        let negative_asym = LinkFaultPlan {
            asymmetry: vec![AsymmetricDelay {
                link: 0,
                extra_ab: Nanos::from_nanos(-5),
                extra_ba: Nanos::ZERO,
            }],
            ..LinkFaultPlan::none()
        };
        assert!(negative_asym.validate().is_err());
    }

    #[test]
    fn snap_state_roundtrip() {
        let mut faults = LinkFaults::new(LinkFaultPlan::with_loss(0.5), 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..17 {
            faults.drops(LinkId(1), &mut rng);
        }
        faults.set_down(LinkId(0), true);
        let mut w = Writer::new();
        faults.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = LinkFaults::new(LinkFaultPlan::with_loss(0.5), 2);
        restored.load_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored, faults);

        // Length mismatch is rejected.
        let mut wrong = LinkFaults::new(LinkFaultPlan::none(), 5);
        assert!(wrong.load_state(&mut Reader::new(&bytes)).is_err());
    }
}
