//! Frame-level trace capture (a pcap-style debugging aid).
//!
//! When enabled, the experiment world records one line per frame event
//! (departure/arrival per port) into a bounded ring buffer. Rendering
//! the tail after a failed assertion is usually enough to see which
//! Sync/Follow_Up pairing or pdelay exchange went wrong.

use crate::topology::PortAddr;
use std::collections::VecDeque;
use std::fmt::Write as _;
use tsn_time::SimTime;

/// Direction of a traced frame event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDir {
    /// Frame left this port.
    Tx,
    /// Frame arrived at this port.
    Rx,
}

/// One captured frame event.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// True time of the event.
    pub at: SimTime,
    /// Port the event occurred on.
    pub port: PortAddr,
    /// Direction.
    pub dir: TraceDir,
    /// Human-readable frame summary (message type, domain, seq …).
    pub summary: String,
}

/// Bounded ring buffer of frame events.
///
/// # Examples
///
/// ```
/// use tsn_netsim::{FrameTrace, PortAddr, DeviceId, TraceDir};
/// use tsn_time::SimTime;
///
/// let mut trace = FrameTrace::new(2);
/// let port = PortAddr::new(DeviceId(0), 0);
/// trace.record(SimTime::from_millis(1), port, TraceDir::Tx, "Sync dom=0 seq=1");
/// trace.record(SimTime::from_millis(2), port, TraceDir::Rx, "Follow_Up dom=0 seq=1");
/// trace.record(SimTime::from_millis(3), port, TraceDir::Tx, "Sync dom=0 seq=2");
/// // Capacity 2: the oldest entry was evicted.
/// assert_eq!(trace.entries().count(), 2);
/// assert!(trace.render().contains("seq=2"));
/// ```
#[derive(Debug, Clone)]
pub struct FrameTrace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    /// Total events observed (including evicted ones).
    pub total: u64,
}

impl FrameTrace {
    /// Creates a trace holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FrameTrace {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Records one event.
    pub fn record(
        &mut self,
        at: SimTime,
        port: PortAddr,
        dir: TraceDir,
        summary: impl Into<String>,
    ) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            at,
            port,
            dir,
            summary: summary.into(),
        });
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Renders the retained events, one line each.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let dir = match e.dir {
                TraceDir::Tx => "tx",
                TraceDir::Rx => "rx",
            };
            let _ = writeln!(out, "{} {} {} {}", e.at, e.port, dir, e.summary);
        }
        out
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for TraceDir {
    fn put(&self, w: &mut Writer) {
        (matches!(self, TraceDir::Rx) as u8).put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::get(r)? {
            0 => Ok(TraceDir::Tx),
            1 => Ok(TraceDir::Rx),
            _ => Err(SnapError::Malformed("trace direction discriminant")),
        }
    }
}

impl Snap for TraceEntry {
    fn put(&self, w: &mut Writer) {
        self.at.put(w);
        self.port.put(w);
        self.dir.put(w);
        self.summary.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(TraceEntry {
            at: Snap::get(r)?,
            port: Snap::get(r)?,
            dir: Snap::get(r)?,
            summary: Snap::get(r)?,
        })
    }
}

impl SnapState for FrameTrace {
    fn save_state(&self, w: &mut Writer) {
        self.total.put(w);
        self.entries.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.total = Snap::get(r)?;
        self.entries = Snap::get(r)?;
        if self.entries.len() > self.capacity {
            return Err(SnapError::Malformed("trace exceeds capacity"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DeviceId;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = FrameTrace::new(3);
        let port = PortAddr::new(DeviceId(1), 0);
        for i in 0..10u64 {
            t.record(SimTime::from_nanos(i), port, TraceDir::Rx, format!("f{i}"));
        }
        assert_eq!(t.total, 10);
        let kept: Vec<&str> = t.entries().map(|e| e.summary.as_str()).collect();
        assert_eq!(kept, vec!["f7", "f8", "f9"]);
    }

    #[test]
    fn render_formats_lines() {
        let mut t = FrameTrace::new(4);
        t.record(
            SimTime::from_millis(125),
            PortAddr::new(DeviceId(2), 1),
            TraceDir::Tx,
            "Sync dom=3 seq=9",
        );
        let s = t.render();
        assert!(s.contains("dev2:p1 tx Sync dom=3 seq=9"), "{s}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FrameTrace::new(0);
    }
}
