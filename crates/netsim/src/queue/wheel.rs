//! Hierarchical timing-wheel event queue — the production event core.
//!
//! # Layout
//!
//! Four wheel levels of 512 slots each; level `k` slots are `512^k` ns
//! wide, so level 0 resolves single nanoseconds and the four levels
//! together span one *super-window* of `512^4 = 2^36` ns (≈ 68.7 s).
//! Wide levels keep the µs–ms delays that dominate simulated traffic at
//! most two cascades from the bottom; occupancy is an 8-word bitmask
//! per level (one cache line each). Entries live in a slab (`Vec` +
//! free list) and slots are intrusive singly-linked lists of slab
//! indices, so scheduling is O(1) and no event payload moves during
//! heap sifts. Two side heaps complete the picture:
//!
//! * **overflow** — entries whose timestamp falls outside the cursor's
//!   current super-window (`at >> 36 != elapsed >> 36`). Keeping the
//!   wheel strictly inside one super-window means slot indices never
//!   wrap, which is what makes the ordering argument below airtight.
//! * **past** — entries legally scheduled (`at >= now`) but behind the
//!   wheel cursor `elapsed`, which can run ahead of `now` when a
//!   bounded [`WheelQueue::pop_batch`] cascades entries downward and
//!   then stops because the next event lies beyond `until`.
//!
//! # Why slot-scan order preserves `(time, seq)`
//!
//! Every entry is filed at the level of the highest 9-bit digit in
//! which its timestamp differs from `elapsed` (`level_for`). Because
//! wheel entries share the cursor's super-window and are never behind
//! it, a level-`j` entry agrees with `elapsed` on all digits above `j`,
//! while a level-`k` entry (`k > j`) *exceeds* `elapsed` at digit `k`
//! — hence every level-`j` timestamp is strictly less than every
//! level-`k` timestamp. The wheel minimum therefore always lives in
//! the **lowest occupied level**, and within that level in the **first
//! occupied slot** at or ahead of the cursor (slots of one level cover
//! disjoint, increasing intervals). A level-0 slot is 1 ns wide, so it
//! holds exactly one timestamp: popping it yields the whole
//! same-timestamp batch, which is then sorted by sequence number — the
//! exact `(time, seq)` order of the reference heap, including the
//! [`CTL_SEQ_BASE`](super::CTL_SEQ_BASE) split (control sequences are
//! plain `u64`s above the base, so the same sort applies). Cascading a
//! higher-level slot moves the cursor to the slot's start (still a
//! lower bound for every pending entry) and re-files its entries at
//! strictly lower levels, so cascades terminate and never reorder.
//!
//! The side heaps cannot interleave with a wheel batch: `past` times
//! are `< elapsed`, wheel times are `>= elapsed`, and overflow times
//! lie in a later super-window than every wheel time — the three
//! containers partition pending events into disjoint time ranges, so a
//! same-timestamp batch never spans containers.

use super::CTL_SEQ_BASE;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};
use tsn_time::{Nanos, SimTime};

/// Number of wheel levels.
const LEVELS: usize = 4;
/// log2 of the slot count per level.
const SLOT_BITS: usize = 9;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Words per per-level occupancy bitmask.
const WORDS: usize = SLOTS / 64;
/// Bit position of the super-window boundary (`4 * 9`).
const SUPER_SHIFT: usize = LEVELS * SLOT_BITS;
/// Null slab index terminating slot lists and the free list.
const NIL: u32 = u32::MAX;

/// Slab cell: one scheduled event plus its intrusive slot-list link.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    next: u32,
    event: Option<E>,
}

/// Min-heap key for the `past` and `overflow` side heaps:
/// `(time in ns, sequence, slab index)`.
type HeapKey = Reverse<(u64, u64, u32)>;

/// Level of the highest 9-bit digit in which `at` differs from
/// `elapsed`. Both must lie in the same super-window and `at >=
/// elapsed`, so the result is `0..LEVELS`.
fn level_for(elapsed: u64, at: u64) -> usize {
    let x = elapsed ^ at;
    debug_assert!(x >> SUPER_SHIFT == 0, "level_for across super-windows");
    if x == 0 {
        0
    } else {
        (63 - x.leading_zeros() as usize) / SLOT_BITS
    }
}

/// A deterministic event queue over an application-defined event type,
/// implemented as a hierarchical timing wheel (see module docs).
///
/// Observationally equivalent to [`ReferenceQueue`](super::ReferenceQueue):
/// identical `(time, seq, event)` pop sequences and a byte-identical
/// snapshot encoding — the differential harness in
/// `crates/netsim/tests/queue_diff.rs` pins this.
///
/// # Examples
///
/// ```
/// use tsn_netsim::WheelQueue;
/// use tsn_time::{Nanos, SimTime};
///
/// let mut q = WheelQueue::new();
/// q.schedule_at(SimTime::from_millis(10), "b");
/// q.schedule_at(SimTime::from_millis(5), "a");
/// q.schedule_in(Nanos::from_millis(10), "c"); // relative to now (= 0)
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct WheelQueue<E> {
    slab: Vec<Entry<E>>,
    free_head: u32,
    /// Slot-list heads: `slots[level][slot]` is a slab index or `NIL`.
    slots: [[u32; SLOTS]; LEVELS],
    /// One occupancy bit per slot, per level (8 words of 64).
    occupied: [[u64; WORDS]; LEVELS],
    /// Per-level summary: bit `w` set iff `occupied[level][w] != 0`,
    /// so the first occupied slot needs two `trailing_zeros`, not a
    /// word scan.
    summary: [u64; LEVELS],
    /// Wheel cursor in ns. Invariants: `now <= elapsed`; every wheel
    /// entry satisfies `at >= elapsed` and shares its super-window.
    elapsed: u64,
    past: BinaryHeap<HeapKey>,
    overflow: BinaryHeap<HeapKey>,
    /// Reusable scratch for sorting a popped batch by sequence.
    scratch: Vec<(u64, u32)>,
    now: SimTime,
    next_seq: u64,
    next_ctl: u64,
    popped: u64,
    pending: usize,
    ctl_pending: usize,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        WheelQueue {
            slab: Vec::new(),
            free_head: NIL,
            slots: [[NIL; SLOTS]; LEVELS],
            occupied: [[0; WORDS]; LEVELS],
            summary: [0; LEVELS],
            elapsed: 0,
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_ctl: CTL_SEQ_BASE,
            popped: 0,
            pending: 0,
            ctl_pending: 0,
        }
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    #[inline]
    fn alloc(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        let cell = Entry {
            at,
            seq,
            next: NIL,
            event: Some(event),
        };
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slab[idx as usize].next;
            self.slab[idx as usize] = cell;
            idx
        } else {
            assert!(self.slab.len() < NIL as usize, "slab index space exhausted");
            self.slab.push(cell);
            (self.slab.len() - 1) as u32
        }
    }

    #[inline]
    fn release(&mut self, idx: u32) -> (SimTime, u64, E) {
        let cell = &mut self.slab[idx as usize];
        let event = cell.event.take().expect("releasing a free slab cell");
        let (at, seq) = (cell.at, cell.seq);
        cell.next = self.free_head;
        self.free_head = idx;
        self.pending -= 1;
        if seq >= CTL_SEQ_BASE {
            self.ctl_pending -= 1;
        }
        (at, seq, event)
    }

    #[inline]
    fn occ_set(&mut self, level: usize, slot: usize) {
        self.occupied[level][slot / 64] |= 1 << (slot % 64);
        self.summary[level] |= 1 << (slot / 64);
    }

    #[inline]
    fn occ_clear(&mut self, level: usize, slot: usize) {
        let w = slot / 64;
        self.occupied[level][w] &= !(1 << (slot % 64));
        if self.occupied[level][w] == 0 {
            self.summary[level] &= !(1 << w);
        }
    }

    /// First occupied slot of `level`, if any.
    #[inline]
    fn occ_first(&self, level: usize) -> Option<usize> {
        let s = self.summary[level];
        if s == 0 {
            return None;
        }
        let w = s.trailing_zeros() as usize;
        Some(w * 64 + self.occupied[level][w].trailing_zeros() as usize)
    }

    /// Files slab entry `idx` into the wheel at its level for the
    /// current cursor. Caller guarantees `at >= elapsed` and a shared
    /// super-window.
    #[inline]
    fn file_in_wheel(&mut self, idx: u32) {
        let at = self.slab[idx as usize].at.as_nanos();
        let level = level_for(self.elapsed, at);
        let slot = (at >> (SLOT_BITS * level)) as usize & (SLOTS - 1);
        self.slab[idx as usize].next = self.slots[level][slot];
        self.slots[level][slot] = idx;
        self.occ_set(level, slot);
    }

    /// Routes slab entry `idx` to the container its timestamp belongs
    /// in: `past` (behind the cursor), the wheel (cursor's
    /// super-window), or `overflow` (a later super-window).
    #[inline]
    fn place(&mut self, idx: u32) {
        let at = self.slab[idx as usize].at.as_nanos();
        let seq = self.slab[idx as usize].seq;
        if at < self.elapsed {
            self.past.push(Reverse((at, seq, idx)));
        } else if at >> SUPER_SHIFT == self.elapsed >> SUPER_SHIFT {
            self.file_in_wheel(idx);
        } else {
            self.overflow.push(Reverse((at, seq, idx)));
        }
    }

    #[inline]
    fn insert(&mut self, at: SimTime, seq: u64, event: E) {
        let idx = self.alloc(at, seq, event);
        self.pending += 1;
        if seq >= CTL_SEQ_BASE {
            self.ctl_pending += 1;
        }
        self.place(idx);
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at}, before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(at, seq, event);
    }

    /// Schedules a *control* event (fault injection, attacker strike) at
    /// absolute time `at`.
    ///
    /// Control events take sequence numbers from a separate space above
    /// [`CTL_SEQ_BASE`], so scheduling them does not consume data-event
    /// sequence numbers: configurations that differ only in their control
    /// schedule stay byte-identical until the first control event fires.
    /// On a time tie a control event sorts *after* every data event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_ctl_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at}, before current time {}",
            self.now
        );
        let seq = self.next_ctl;
        self.next_ctl += 1;
        self.insert(at, seq, event);
    }

    /// Schedules `event` after a non-negative delay from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        assert!(!delay.is_negative(), "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Re-inserts an event with an explicit sequence number, bumping the
    /// owning sequence counter past it. Restore-only: the caller is
    /// responsible for sequence uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn insert_raw(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "event inserted at {at}, before current time {}",
            self.now
        );
        if seq >= CTL_SEQ_BASE {
            self.next_ctl = self.next_ctl.max(seq + 1);
        } else {
            self.next_seq = self.next_seq.max(seq + 1);
        }
        self.insert(at, seq, event);
    }

    /// Removes and returns all pending control events as
    /// `(time, sequence, event)` triples, sorted by `(time, sequence)`.
    ///
    /// Restore uses this to reconcile a rebuilt world's control schedule
    /// with a checkpoint that predates any control event (see
    /// [`WheelQueue::insert_raw`]).
    pub fn drain_ctl(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut ctl = Vec::new();
        let mut data = Vec::new();
        for cell in self.slab.drain(..) {
            if let Some(event) = cell.event {
                if cell.seq >= CTL_SEQ_BASE {
                    ctl.push((cell.at, cell.seq, event));
                } else {
                    data.push((cell.at, cell.seq, event));
                }
            }
        }
        self.free_head = NIL;
        self.slots = [[NIL; SLOTS]; LEVELS];
        self.occupied = [[0; WORDS]; LEVELS];
        self.summary = [0; LEVELS];
        self.past.clear();
        self.overflow.clear();
        self.pending = 0;
        self.ctl_pending = 0;
        for (at, seq, event) in data {
            self.pending += 1;
            let idx = self.alloc(at, seq, event);
            self.place(idx);
        }
        ctl.sort_by_key(|&(at, seq, _)| (at, seq));
        ctl
    }

    /// Number of pending control events.
    pub fn ctl_len(&self) -> usize {
        self.ctl_pending
    }

    /// Next sequence number of the control space (equals
    /// [`CTL_SEQ_BASE`] while no control event has ever been scheduled).
    pub fn next_ctl_seq(&self) -> u64 {
        self.next_ctl
    }

    /// Lowest occupied level and its first occupied slot at or ahead of
    /// the cursor — the slot holding the wheel's minimum (module docs).
    fn wheel_first(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            if let Some(slot) = self.occ_first(level) {
                debug_assert!(
                    slot >= ((self.elapsed >> (SLOT_BITS * level)) as usize & (SLOTS - 1)),
                    "wheel slot occupied behind the cursor"
                );
                return Some((level, slot));
            }
        }
        None
    }

    /// Start time (ns) of `slot` at `level` in the cursor's rotation —
    /// a lower bound for every entry the slot holds.
    fn slot_deadline(&self, level: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS * level;
        (((self.elapsed >> shift) & !(SLOTS as u64 - 1)) | slot as u64) << shift
    }

    /// Re-files every entry of a level > 0 slot at strictly lower
    /// levels, advancing the cursor to the slot's start first.
    fn cascade(&mut self, level: usize, slot: usize, deadline: u64) {
        debug_assert!(level > 0 && deadline >= self.elapsed);
        self.elapsed = deadline;
        let mut idx = self.slots[level][slot];
        self.slots[level][slot] = NIL;
        self.occ_clear(level, slot);
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.file_in_wheel(idx);
            idx = next;
        }
    }

    /// Moves overflow entries that now share the cursor's super-window
    /// into the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(&Reverse((at, _, idx))) = self.overflow.peek() {
            if at >> SUPER_SHIFT != self.elapsed >> SUPER_SHIFT {
                break;
            }
            debug_assert!(at >= self.elapsed);
            self.overflow.pop();
            self.file_in_wheel(idx);
        }
    }

    /// Time of the next pending event, if any. Exact and non-mutating:
    /// the candidate containers hold disjoint time ranges, and within
    /// the wheel the first occupied slot of the lowest occupied level
    /// contains the minimum (its list is scanned when wider than 1 ns).
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&Reverse((at, _, _))) = self.past.peek() {
            return Some(SimTime::from_nanos(at));
        }
        if let Some((level, slot)) = self.wheel_first() {
            if level == 0 {
                return Some(SimTime::from_nanos(self.slot_deadline(0, slot)));
            }
            let mut min = u64::MAX;
            let mut idx = self.slots[level][slot];
            while idx != NIL {
                min = min.min(self.slab[idx as usize].at.as_nanos());
                idx = self.slab[idx as usize].next;
            }
            return Some(SimTime::from_nanos(min));
        }
        self.overflow
            .peek()
            .map(|&Reverse((at, _, _))| SimTime::from_nanos(at))
    }

    /// Pops the next event, advancing the current time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_seq().map(|(at, _, event)| (at, event))
    }

    /// Pops the next event together with its tie-break sequence number.
    ///
    /// Diagnostic surface for the differential test harness, which
    /// asserts identical `(time, seq, event)` sequences across queue
    /// implementations.
    pub fn pop_seq(&mut self) -> Option<(SimTime, u64, E)> {
        loop {
            if let Some(&Reverse((_, _, idx))) = self.past.peek() {
                self.past.pop();
                let (at, seq, event) = self.release(idx);
                self.now = at;
                self.popped += 1;
                return Some((at, seq, event));
            }
            if let Some((level, slot)) = self.wheel_first() {
                let deadline = self.slot_deadline(level, slot);
                if level > 0 {
                    let head = self.slots[level][slot];
                    if self.slab[head as usize].next == NIL {
                        // Singleton slot at the lowest occupied level:
                        // its entry is the wheel minimum (module docs),
                        // so pop it directly instead of cascading it
                        // down level by level. Equal timestamps always
                        // share a slot, so the batch size is 1.
                        self.slots[level][slot] = NIL;
                        self.occ_clear(level, slot);
                        self.elapsed = self.slab[head as usize].at.as_nanos();
                        let (at, seq, event) = self.release(head);
                        self.now = at;
                        self.popped += 1;
                        return Some((at, seq, event));
                    }
                    self.cascade(level, slot, deadline);
                    continue;
                }
                self.elapsed = deadline;
                // Unlink the minimum-sequence entry; the slot is 1 ns
                // wide, so every entry shares the timestamp.
                let (mut min_prev, mut min_idx) = (NIL, NIL);
                let (mut prev, mut idx) = (NIL, self.slots[0][slot]);
                let mut min_seq = u64::MAX;
                while idx != NIL {
                    let seq = self.slab[idx as usize].seq;
                    if seq < min_seq {
                        (min_seq, min_prev, min_idx) = (seq, prev, idx);
                    }
                    prev = idx;
                    idx = self.slab[idx as usize].next;
                }
                let after = self.slab[min_idx as usize].next;
                if min_prev == NIL {
                    self.slots[0][slot] = after;
                } else {
                    self.slab[min_prev as usize].next = after;
                }
                if self.slots[0][slot] == NIL {
                    self.occ_clear(0, slot);
                }
                let (at, seq, event) = self.release(min_idx);
                self.now = at;
                self.popped += 1;
                return Some((at, seq, event));
            }
            if let Some(&Reverse((at, _, _))) = self.overflow.peek() {
                self.elapsed = at;
                self.migrate_overflow();
                continue;
            }
            return None;
        }
    }

    /// Pops the entire batch of events sharing the earliest pending
    /// timestamp, provided that timestamp is `<= until`; appends them to
    /// `out` in `(time, seq)` order and returns how many were popped.
    ///
    /// Returns 0 — and pops nothing — when the queue is empty or the
    /// next event lies beyond `until` (the cursor may still have
    /// advanced internally from cascades; later inserts behind it land
    /// in the `past` heap). The world's event loop consumes the queue
    /// in these same-timestamp batches.
    #[inline]
    pub fn pop_batch(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let until = until.as_nanos();
        loop {
            if let Some(&Reverse((t, _, _))) = self.past.peek() {
                if t > until {
                    return 0;
                }
                let mut n = 0;
                while let Some(&Reverse((at, _, idx))) = self.past.peek() {
                    if at != t {
                        break;
                    }
                    self.past.pop();
                    let (at, _, event) = self.release(idx);
                    out.push((at, event));
                    n += 1;
                }
                self.now = SimTime::from_nanos(t);
                self.popped += n as u64;
                return n;
            }
            if let Some((level, slot)) = self.wheel_first() {
                if level > 0 {
                    let head = self.slots[level][slot];
                    if self.slab[head as usize].next == NIL {
                        // Singleton slot at the lowest occupied level:
                        // its entry is the wheel minimum (module docs),
                        // so pop it directly instead of cascading it
                        // down level by level. Equal timestamps always
                        // share a slot, so the batch size is 1.
                        let at = self.slab[head as usize].at.as_nanos();
                        if at > until {
                            return 0;
                        }
                        self.slots[level][slot] = NIL;
                        self.occ_clear(level, slot);
                        self.elapsed = at;
                        let (at, _, event) = self.release(head);
                        out.push((at, event));
                        self.now = at;
                        self.popped += 1;
                        return 1;
                    }
                    let deadline = self.slot_deadline(level, slot);
                    if deadline > until {
                        return 0;
                    }
                    self.cascade(level, slot, deadline);
                    continue;
                }
                let deadline = self.slot_deadline(0, slot);
                if deadline > until {
                    return 0;
                }
                self.elapsed = deadline;
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                let mut idx = self.slots[0][slot];
                self.slots[0][slot] = NIL;
                self.occ_clear(0, slot);
                while idx != NIL {
                    scratch.push((self.slab[idx as usize].seq, idx));
                    idx = self.slab[idx as usize].next;
                }
                scratch.sort_unstable_by_key(|&(seq, _)| seq);
                let n = scratch.len();
                for &(_, idx) in &scratch {
                    let (at, _, event) = self.release(idx);
                    out.push((at, event));
                }
                self.scratch = scratch;
                self.now = SimTime::from_nanos(deadline);
                self.popped += n as u64;
                return n;
            }
            let Some(&Reverse((t, _, _))) = self.overflow.peek() else {
                return 0;
            };
            if t > until {
                return 0;
            }
            self.elapsed = t;
            self.migrate_overflow();
        }
    }
}

impl<E: Snap> SnapState for WheelQueue<E> {
    fn save_state(&self, w: &mut Writer) {
        self.now.put(w);
        self.next_seq.put(w);
        self.next_ctl.put(w);
        self.popped.put(w);
        // Canonical encoding shared with the reference queue: the
        // (time, seq)-sorted entry list. Wheel internals (cursor, slot
        // layout, side heaps) are reconstructed on load, so snapshots
        // are byte-identical across queue implementations.
        let mut entries: Vec<&Entry<E>> = self
            .slab
            .iter()
            .filter(|cell| cell.event.is_some())
            .collect();
        entries.sort_by_key(|cell| (cell.at, cell.seq));
        entries.len().put(w);
        for cell in entries {
            cell.at.put(w);
            cell.seq.put(w);
            cell.event.as_ref().expect("live entry").put(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.now = Snap::get(r)?;
        self.next_seq = Snap::get(r)?;
        self.next_ctl = Snap::get(r)?;
        self.popped = Snap::get(r)?;
        self.slab.clear();
        self.free_head = NIL;
        self.slots = [[NIL; SLOTS]; LEVELS];
        self.occupied = [[0; WORDS]; LEVELS];
        self.summary = [0; LEVELS];
        self.past.clear();
        self.overflow.clear();
        self.pending = 0;
        self.ctl_pending = 0;
        self.elapsed = self.now.as_nanos();
        let n = usize::get(r)?;
        for _ in 0..n {
            let at = SimTime::get(r)?;
            let seq = u64::get(r)?;
            let event = E::get(r)?;
            if at < self.now {
                return Err(SnapError::Malformed("queued event before current time"));
            }
            self.insert(at, seq, event);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = WheelQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = WheelQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut q = WheelQueue::new();
        q.schedule_at(SimTime::from_millis(5), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(4), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = WheelQueue::new();
        q.schedule_at(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_is_exact_across_levels_and_overflow() {
        let mut q = WheelQueue::new();
        q.schedule_at(SimTime::from_nanos((1 << SUPER_SHIFT) + 5), 1u64);
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_nanos((1 << SUPER_SHIFT) + 5))
        );
        q.schedule_at(SimTime::from_nanos(70_000), 2); // level 2
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(70_000)));
        q.schedule_at(SimTime::from_nanos(90), 3); // level 1
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(90)));
    }

    #[test]
    fn far_future_entries_cross_super_windows() {
        let mut q = WheelQueue::new();
        let far = SimTime::from_nanos((1 << SUPER_SHIFT) + 123);
        let farther = SimTime::from_nanos((3 << SUPER_SHIFT) + 7);
        q.schedule_at(farther, 3u64);
        q.schedule_at(far, 2u64);
        q.schedule_at(SimTime::from_nanos(10), 1u64);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((far, 2)));
        // After the jump the queue keeps accepting near-term work.
        q.schedule_in(Nanos::from_nanos(1), 9u64);
        assert_eq!(q.pop().map(|(_, e)| e), Some(9));
        assert_eq!(q.pop(), Some((farther, 3)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn bounded_pop_then_past_insert_stays_ordered() {
        let mut q = WheelQueue::new();
        // A level-2 entry whose slot starts at 98_304: a bounded pop up
        // to 99_000 cascades the cursor to the slot start but pops
        // nothing (the event itself is at 100_000).
        q.schedule_at(SimTime::from_nanos(100_000), 1u64);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(SimTime::from_nanos(99_000), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        // Legal insert (>= now) behind the advanced cursor: must still
        // pop first, from the past heap.
        q.schedule_at(SimTime::from_nanos(50_000), 2u64);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50_000)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50_000), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100_000), 1)));
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp() {
        let mut q = WheelQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_at(t, 1);
        q.schedule_at(SimTime::from_nanos(9), 3);
        q.schedule_at(t, 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(SimTime::from_nanos(100), &mut out), 2);
        assert_eq!(out, vec![(t, 1), (t, 2)]);
        // Beyond `until` nothing moves.
        out.clear();
        assert_eq!(q.pop_batch(SimTime::from_nanos(8), &mut out), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_batch(SimTime::from_nanos(9), &mut out), 1);
        assert_eq!(out, vec![(SimTime::from_nanos(9), 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn batch_merges_data_and_ctl_in_seq_order() {
        let mut q = WheelQueue::new();
        let t = SimTime::from_millis(3);
        q.schedule_ctl_at(t, "ctl");
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(t, &mut out), 3);
        let evs: Vec<&str> = out.into_iter().map(|(_, e)| e).collect();
        assert_eq!(evs, vec!["a", "b", "ctl"]);
    }

    #[test]
    fn slab_recycles_freed_cells() {
        let mut q = WheelQueue::new();
        for round in 0..5u64 {
            for i in 0..50 {
                q.schedule_in(Nanos::from_nanos(i + 1), round * 100 + i as u64);
            }
            while q.pop().is_some() {}
        }
        assert!(q.slab.len() <= 50, "slab grew: {}", q.slab.len());
    }
}
