//! The reference event queue: a `BinaryHeap` ordered by `(time, seq)`.
//!
//! This is the original, obviously-correct implementation. It is kept —
//! and always compiled — as the differential-testing oracle for the
//! production [`WheelQueue`](super::WheelQueue): the two must emit
//! identical `(time, seq, event)` pop sequences for identical schedules,
//! and their snapshot encodings are byte-compatible. Building with the
//! `reference-queue` feature swaps this implementation back in as
//! [`EventQueue`](super::EventQueue) for whole-campaign differential runs.

use super::CTL_SEQ_BASE;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};
use tsn_time::{Nanos, SimTime};

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic event queue over an application-defined event type.
///
/// # Examples
///
/// ```
/// use tsn_netsim::ReferenceQueue;
/// use tsn_time::{Nanos, SimTime};
///
/// let mut q = ReferenceQueue::new();
/// q.schedule_at(SimTime::from_millis(10), "b");
/// q.schedule_at(SimTime::from_millis(5), "a");
/// q.schedule_in(Nanos::from_millis(10), "c"); // relative to now (= 0)
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    next_seq: u64,
    next_ctl: u64,
    popped: u64,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_ctl: CTL_SEQ_BASE,
            popped: 0,
        }
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at}, before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules a *control* event (fault injection, attacker strike) at
    /// absolute time `at`.
    ///
    /// Control events take sequence numbers from a separate space above
    /// [`CTL_SEQ_BASE`], so scheduling them does not consume data-event
    /// sequence numbers: configurations that differ only in their control
    /// schedule stay byte-identical until the first control event fires.
    /// On a time tie a control event sorts *after* every data event.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_ctl_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at}, before current time {}",
            self.now
        );
        let seq = self.next_ctl;
        self.next_ctl += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns all pending control events as
    /// `(time, sequence, event)` triples, sorted by `(time, sequence)`.
    ///
    /// Restore uses this to reconcile a rebuilt world's control schedule
    /// with a checkpoint that predates any control event (see
    /// [`ReferenceQueue::insert_raw`]).
    pub fn drain_ctl(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut ctl = Vec::new();
        let mut keep = BinaryHeap::with_capacity(self.heap.len());
        for Reverse(s) in self.heap.drain() {
            if s.seq >= CTL_SEQ_BASE {
                ctl.push((s.at, s.seq, s.event));
            } else {
                keep.push(Reverse(s));
            }
        }
        self.heap = keep;
        ctl.sort_by_key(|&(at, seq, _)| (at, seq));
        ctl
    }

    /// Number of pending control events.
    pub fn ctl_len(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(s)| s.seq >= CTL_SEQ_BASE)
            .count()
    }

    /// Next sequence number of the control space (equals
    /// [`CTL_SEQ_BASE`] while no control event has ever been scheduled).
    pub fn next_ctl_seq(&self) -> u64 {
        self.next_ctl
    }

    /// Re-inserts an event with an explicit sequence number, bumping the
    /// owning sequence counter past it. Restore-only: the caller is
    /// responsible for sequence uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn insert_raw(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "event inserted at {at}, before current time {}",
            self.now
        );
        if seq >= CTL_SEQ_BASE {
            self.next_ctl = self.next_ctl.max(seq + 1);
        } else {
            self.next_seq = self.next_seq.max(seq + 1);
        }
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` after a non-negative delay from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        assert!(!delay.is_negative(), "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the current time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_seq().map(|(at, _, event)| (at, event))
    }

    /// Pops the next event together with its tie-break sequence number.
    ///
    /// Diagnostic surface for the differential test harness, which
    /// asserts identical `(time, seq, event)` sequences across queue
    /// implementations.
    pub fn pop_seq(&mut self) -> Option<(SimTime, u64, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.seq, s.event))
    }

    /// Pops the entire batch of events sharing the earliest pending
    /// timestamp, provided that timestamp is `<= until`; appends them to
    /// `out` in `(time, seq)` order and returns how many were popped.
    ///
    /// Returns 0 — and leaves the queue untouched — when the queue is
    /// empty or the next event lies beyond `until`. The world's event
    /// loop consumes the queue in these same-timestamp batches.
    pub fn pop_batch(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let Some(t) = self.peek_time() else {
            return 0;
        };
        if t > until {
            return 0;
        }
        let mut n = 0;
        while self.peek_time() == Some(t) {
            let (at, e) = self.pop().expect("peeked");
            out.push((at, e));
            n += 1;
        }
        n
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_millis(5), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(4), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_at(t, 1);
        q.schedule_at(SimTime::from_nanos(9), 3);
        q.schedule_at(t, 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(SimTime::from_nanos(100), &mut out), 2);
        assert_eq!(out, vec![(t, 1), (t, 2)]);
        // Beyond `until` nothing moves.
        out.clear();
        assert_eq!(q.pop_batch(SimTime::from_nanos(8), &mut out), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_batch(SimTime::from_nanos(9), &mut out), 1);
        assert_eq!(out, vec![(SimTime::from_nanos(9), 3)]);
        assert!(q.is_empty());
    }
}

impl<E: Snap> SnapState for ReferenceQueue<E> {
    fn save_state(&self, w: &mut Writer) {
        self.now.put(w);
        self.next_seq.put(w);
        self.next_ctl.put(w);
        self.popped.put(w);
        // The heap's internal layout is insertion-order dependent; the
        // canonical encoding is the (time, seq) sort, which the total
        // order on `Scheduled` makes unique.
        let mut entries: Vec<&Scheduled<E>> = self.heap.iter().map(|Reverse(s)| s).collect();
        entries.sort_by_key(|s| (s.at, s.seq));
        entries.len().put(w);
        for s in entries {
            s.at.put(w);
            s.seq.put(w);
            s.event.put(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.now = Snap::get(r)?;
        self.next_seq = Snap::get(r)?;
        self.next_ctl = Snap::get(r)?;
        self.popped = Snap::get(r)?;
        let n = usize::get(r)?;
        self.heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let at = SimTime::get(r)?;
            let seq = u64::get(r)?;
            let event = E::get(r)?;
            if at < self.now {
                return Err(SnapError::Malformed("queued event before current time"));
            }
            self.heap.push(Reverse(Scheduled { at, seq, event }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod snap_tests {
    use super::*;

    fn encoded<E: Snap>(q: &ReferenceQueue<E>) -> Vec<u8> {
        let mut w = Writer::new();
        q.save_state(&mut w);
        w.into_bytes()
    }

    #[test]
    fn ctl_events_use_their_own_sequence_space() {
        let mut with_ctl = ReferenceQueue::new();
        let mut without = ReferenceQueue::new();
        for q in [&mut with_ctl, &mut without] {
            q.schedule_at(SimTime::from_millis(1), 1u64);
            q.schedule_at(SimTime::from_millis(2), 2u64);
        }
        with_ctl.schedule_ctl_at(SimTime::from_millis(9), 9u64);
        // The data event scheduled *after* the control event gets the
        // same sequence number in both queues.
        with_ctl.schedule_at(SimTime::from_millis(3), 3u64);
        without.schedule_at(SimTime::from_millis(3), 3u64);
        with_ctl.drain_ctl();
        // Identical except for the ctl counter itself (bytes 16..24 of
        // the layout: now, next_seq, next_ctl, popped, entries).
        let (a, b) = (encoded(&with_ctl), encoded(&without));
        assert_eq!(a[..16], b[..16]);
        assert_eq!(a[24..], b[24..]);
    }

    #[test]
    fn ctl_sorts_after_data_on_time_tie() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_ctl_at(t, "ctl");
        q.schedule_at(t, "data");
        assert_eq!(q.pop().map(|(_, e)| e), Some("data"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("ctl"));
        assert_eq!(q.next_ctl_seq(), CTL_SEQ_BASE + 1);
    }

    #[test]
    fn drain_and_reinsert_roundtrips() {
        let mut q = ReferenceQueue::new();
        q.schedule_at(SimTime::from_millis(1), 10u64);
        q.schedule_ctl_at(SimTime::from_millis(4), 40u64);
        q.schedule_ctl_at(SimTime::from_millis(2), 20u64);
        let before = encoded(&q);
        let ctl = q.drain_ctl();
        assert_eq!(ctl.len(), 2);
        assert_eq!(q.ctl_len(), 0);
        assert_eq!(q.len(), 1);
        for (at, seq, ev) in ctl {
            q.insert_raw(at, seq, ev);
        }
        assert_eq!(encoded(&q), before);
        assert_eq!(q.next_ctl_seq(), CTL_SEQ_BASE + 2);
    }

    #[test]
    fn save_load_is_byte_exact() {
        let mut q = ReferenceQueue::new();
        for i in 0..20u64 {
            q.schedule_at(SimTime::from_nanos(i % 7), i);
        }
        q.schedule_ctl_at(SimTime::from_millis(1), 99);
        q.pop();
        q.pop();
        let bytes = encoded(&q);
        let mut fresh: ReferenceQueue<u64> = ReferenceQueue::new();
        fresh.load_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(encoded(&fresh), bytes);
        // Both queues pop identically from here on.
        loop {
            let (a, b) = (q.pop(), fresh.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
