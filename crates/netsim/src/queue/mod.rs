//! Deterministic discrete-event queues.
//!
//! Events are ordered by `(time, sequence number)`: ties in time are broken
//! by insertion order, which makes runs bit-for-bit reproducible for a
//! given seed regardless of hash-map iteration or allocator behavior.
//!
//! Two implementations share one API and one canonical snapshot encoding:
//!
//! * [`WheelQueue`] — a hierarchical timing wheel with slab-allocated
//!   entries and O(1) insertion, the production event core;
//! * [`ReferenceQueue`] — the original `BinaryHeap` implementation, kept
//!   as the differential-testing oracle.
//!
//! [`EventQueue`] aliases the production implementation; building with
//! the `reference-queue` feature swaps the alias back to the heap so an
//! entire campaign binary can be pitted against the wheel build —
//! artifacts must be byte-identical (CI diffs them).
//!
//! Both queues implement `SnapState` with the *same* byte layout (the
//! `(time, seq)`-sorted canonical entry list), so snapshots taken on one
//! implementation restore onto the other and `state_hash()` values are
//! directly comparable across builds.

mod reference;
mod wheel;

pub use reference::ReferenceQueue;
pub use wheel::WheelQueue;

/// The event queue used by the simulation (see module docs).
#[cfg(feature = "reference-queue")]
pub use reference::ReferenceQueue as EventQueue;

/// The event queue used by the simulation (see module docs).
#[cfg(not(feature = "reference-queue"))]
pub use wheel::WheelQueue as EventQueue;

/// First sequence number of the *control* event space.
///
/// Control events (fault injections, attacker strikes) draw their tie-break
/// sequence numbers from a separate counter starting here, so that adding
/// or removing scheduled interventions never perturbs the tie-break order
/// of ordinary data events. This is what makes two configurations that
/// differ only in post-warmup interventions evolve byte-identically until
/// the first intervention fires — the invariant fork-based campaign
/// execution rests on.
pub const CTL_SEQ_BASE: u64 = 1 << 63;
