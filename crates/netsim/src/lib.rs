//! # tsn-netsim
//!
//! Deterministic discrete-event network simulation substrate for the
//! `clocksync` reproduction of *IEEE 802.1AS Multi-Domain Aggregation for
//! Virtualized Distributed Real-Time Systems* (DSN-S 2023).
//!
//! The paper's testbed — four edge computing devices with Intel I210 NICs
//! and integrated Linux TSN switches in a mesh — is hardware we replace
//! with models (see `DESIGN.md` §2):
//!
//! * [`EventQueue`] — a deterministic event queue (ties broken by
//!   insertion order): a hierarchical timing wheel ([`WheelQueue`]) in
//!   production, with the original heap ([`ReferenceQueue`]) kept as a
//!   differential-testing oracle behind the `reference-queue` feature;
//! * [`SeedSplitter`] — reproducible per-component RNG streams;
//! * [`EthernetFrame`]/[`MacAddr`]/[`VlanTag`] — real wire-format frames;
//! * [`Topology`], [`Link`], [`DelayModel`] — the network graph with
//!   per-direction static-plus-jitter link delays;
//! * [`Switch`], [`Fdb`] — VLAN-aware store-and-forward relay with static
//!   multicast filtering entries;
//! * [`Nic`] — PHC, hardware timestamping, and ETF launch-time
//!   transmission (including deadline-miss faults);
//! * [`LinkFaultPlan`]/[`LinkFaults`] — per-link i.i.d. and
//!   Gilbert–Elliott burst loss, asymmetric delay injection, and timed
//!   link-down windows (arXiv:1609.06771's degradation surface).
//!
//! The simulator is *sans-IO with respect to protocols*: `tsn-gptp`'s
//! engines are pure state machines; the experiment world in the
//! `clocksync` crate owns the event loop and moves frames between them
//! using these models.
//!
//! # Example
//!
//! A two-station topology with deterministic event ordering:
//!
//! ```
//! use tsn_netsim::{DelayModel, EventQueue, Topology};
//! use tsn_time::{Nanos, SimTime};
//!
//! let mut topo = Topology::new();
//! let a = topo.add_station("a");
//! let b = topo.add_station("b");
//! let sw = topo.add_bridge("sw");
//! let d = DelayModel::constant(Nanos::from_micros(2));
//! topo.connect(topo.port(a, 0), topo.port(sw, 0), d, d);
//! topo.connect(topo.port(b, 0), topo.port(sw, 1), d, d);
//! assert_eq!(topo.shortest_path(a, b).unwrap().len(), 2);
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule_at(SimTime::from_millis(1), "deliver frame");
//! assert_eq!(queue.pop(), Some((SimTime::from_millis(1), "deliver frame")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod linkfault;
mod nic;
mod qdisc;
mod queue;
mod rng;
mod switch;
mod topology;
mod trace;

pub use frame::{ethertype, DecodeFrameError, EthernetFrame, MacAddr, VlanTag};
pub use linkfault::{AsymmetricDelay, BurstLoss, LinkDownWindow, LinkFaultPlan, LinkFaults};
pub use nic::{LaunchOutcome, Nic};
pub use qdisc::EgressPort;
pub use queue::{EventQueue, ReferenceQueue, WheelQueue, CTL_SEQ_BASE};
pub use rng::SeedSplitter;
pub use switch::{Fdb, Switch, Vid};
pub use topology::{DelayModel, DeviceId, DeviceKind, Link, LinkId, PortAddr, PortNo, Topology};
pub use trace::{FrameTrace, TraceDir, TraceEntry};
