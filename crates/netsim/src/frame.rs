//! Ethernet frame model with 802.1Q VLAN tagging.
//!
//! Frames carry real bytes end to end: a gPTP message is encoded by
//! `tsn-gptp`, wrapped in an Ethernet frame here, forwarded by switches,
//! and decoded again at the receiver. A Byzantine grandmaster therefore
//! corrupts *wire bytes*, exactly like the paper's malicious `ptp4l`.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The gPTP link-local multicast address `01:80:C2:00:00:0E`
    /// (IEEE 802.1AS clause 10.4.3, non-forwardable by ordinary bridges;
    /// time-aware bridges regenerate rather than forward).
    pub const GPTP_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xC2, 0x00, 0x00, 0x0E]);

    /// PTP over Ethernet general multicast `01:1B:19:00:00:00`
    /// (forwardable; used here for the measurement VLAN probes).
    pub const PTP_MULTICAST: MacAddr = MacAddr([0x01, 0x1B, 0x19, 0x00, 0x00, 0x00]);

    /// Broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic unicast address for simulated NIC `index`.
    pub fn for_nic(index: u32) -> MacAddr {
        let b = index.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// `true` if the I/G bit marks this as a group (multicast) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An 802.1Q VLAN tag (TPID 0x8100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VlanTag {
    /// Priority code point (0–7); gPTP and measurement traffic use 7/6.
    pub pcp: u8,
    /// VLAN identifier (1–4094).
    pub vid: u16,
}

impl VlanTag {
    /// Creates a tag.
    ///
    /// # Panics
    ///
    /// Panics if `pcp > 7` or `vid` is outside 1..=4094.
    pub fn new(pcp: u8, vid: u16) -> Self {
        assert!(pcp <= 7, "PCP {pcp} out of range");
        assert!((1..=4094).contains(&vid), "VID {vid} out of range");
        VlanTag { pcp, vid }
    }
}

/// EtherType values used in the testbed.
pub mod ethertype {
    /// PTP over IEEE 802.3 (gPTP always uses this transport).
    pub const PTP: u16 = 0x88F7;
    /// IEEE 802a experimental — used for the precision measurement probes.
    pub const MEASUREMENT: u16 = 0x88B5;
    /// Synthetic best-effort background traffic (sunk at the receiver).
    pub const BACKGROUND: u16 = 0x0800;
    /// 802.1Q tag protocol identifier.
    pub const VLAN: u16 = 0x8100;

    /// Lower-case name of a known EtherType, `"other"` otherwise.
    pub fn name(ethertype: u16) -> &'static str {
        match ethertype {
            PTP => "ptp",
            MEASUREMENT => "measurement",
            BACKGROUND => "background",
            VLAN => "vlan",
            _ => "other",
        }
    }
}

/// An Ethernet II frame, optionally 802.1Q-tagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Optional 802.1Q tag.
    pub vlan: Option<VlanTag>,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors from [`EthernetFrame::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeFrameError {
    /// Fewer bytes than the minimal header.
    Truncated,
}

impl fmt::Display for DecodeFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeFrameError::Truncated => write!(f, "frame truncated"),
        }
    }
}

impl std::error::Error for DecodeFrameError {}

impl EthernetFrame {
    /// Wire length in bytes (headers + payload, no FCS/preamble).
    pub fn wire_len(&self) -> usize {
        14 + if self.vlan.is_some() { 4 } else { 0 } + self.payload.len()
    }

    /// Serialization time at the given line rate in bits per second,
    /// including preamble+SFD (8 B), FCS (4 B) and minimum 64 B framing.
    pub fn serialization_ns(&self, bits_per_sec: u64) -> tsn_time::Nanos {
        let on_wire = (self.wire_len().max(60) + 4 + 8) as u64; // pad + FCS + preamble
        tsn_time::Nanos::from_nanos(((on_wire * 8 * 1_000_000_000) / bits_per_sec) as i64)
    }

    /// Encodes the frame to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        if let Some(tag) = self.vlan {
            buf.put_u16(ethertype::VLAN);
            let tci = (u16::from(tag.pcp) << 13) | (tag.vid & 0x0FFF);
            buf.put_u16(tci);
        }
        buf.put_u16(self.ethertype);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFrameError::Truncated`] if the bytes are shorter
    /// than the Ethernet (+ optional VLAN) header.
    pub fn decode(bytes: &[u8]) -> Result<EthernetFrame, DecodeFrameError> {
        if bytes.len() < 14 {
            return Err(DecodeFrameError::Truncated);
        }
        let dst = MacAddr(bytes[0..6].try_into().expect("slice of 6"));
        let src = MacAddr(bytes[6..12].try_into().expect("slice of 6"));
        let mut ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
        let mut offset = 14;
        let mut vlan = None;
        if ethertype == ethertype::VLAN {
            if bytes.len() < 18 {
                return Err(DecodeFrameError::Truncated);
            }
            let tci = u16::from_be_bytes([bytes[14], bytes[15]]);
            vlan = Some(VlanTag {
                pcp: (tci >> 13) as u8,
                vid: tci & 0x0FFF,
            });
            ethertype = u16::from_be_bytes([bytes[16], bytes[17]]);
            offset = 18;
        }
        Ok(EthernetFrame {
            dst,
            src,
            vlan,
            ethertype,
            payload: Bytes::copy_from_slice(&bytes[offset..]),
        })
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_frame() -> impl Strategy<Value = EthernetFrame> {
        (
            any::<[u8; 6]>(),
            any::<[u8; 6]>(),
            proptest::option::of((0u8..=7, 1u16..=4094)),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..256),
        )
            .prop_map(|(dst, src, vlan, ethertype, payload)| EthernetFrame {
                dst: MacAddr(dst),
                src: MacAddr(src),
                vlan: vlan.map(|(pcp, vid)| VlanTag::new(pcp, vid)),
                // 0x8100 in the inner ethertype would be a double tag,
                // which this model does not support.
                ethertype: if ethertype == ethertype::VLAN {
                    0x0800
                } else {
                    ethertype
                },
                payload: Bytes::from(payload),
            })
    }

    proptest! {
        #[test]
        fn roundtrip(frame in arb_frame()) {
            let decoded = EthernetFrame::decode(&frame.encode()).expect("decodes");
            prop_assert_eq!(decoded, frame);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = EthernetFrame::decode(&bytes);
        }

        #[test]
        fn wire_len_matches_encoding(frame in arb_frame()) {
            prop_assert_eq!(frame.encode().len(), frame.wire_len());
        }
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, Writer};

impl Snap for MacAddr {
    fn put(&self, w: &mut Writer) {
        w.put_bytes(&self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(MacAddr(r.take(6)?.try_into().expect("6-byte take")))
    }
}

impl Snap for VlanTag {
    fn put(&self, w: &mut Writer) {
        self.pcp.put(w);
        self.vid.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let pcp = u8::get(r)?;
        let vid = u16::get(r)?;
        if pcp > 7 || vid == 0 || vid > 4094 {
            return Err(SnapError::Malformed("vlan tag out of range"));
        }
        Ok(VlanTag { pcp, vid })
    }
}

impl Snap for EthernetFrame {
    fn put(&self, w: &mut Writer) {
        self.dst.put(w);
        self.src.put(w);
        self.vlan.put(w);
        self.ethertype.put(w);
        self.payload.as_ref().len().put(w);
        w.put_bytes(self.payload.as_ref());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let dst = MacAddr::get(r)?;
        let src = MacAddr::get(r)?;
        let vlan = Option::<VlanTag>::get(r)?;
        let ethertype = u16::get(r)?;
        let n = usize::get(r)?;
        let payload = Bytes::from(r.take(n)?.to_vec());
        Ok(EthernetFrame {
            dst,
            src,
            vlan,
            ethertype,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(vlan: Option<VlanTag>) -> EthernetFrame {
        EthernetFrame {
            dst: MacAddr::GPTP_MULTICAST,
            src: MacAddr::for_nic(3),
            vlan,
            ethertype: ethertype::PTP,
            payload: Bytes::from_static(b"\x10\x02\x00\x2c rest"),
        }
    }

    #[test]
    fn encode_decode_roundtrip_untagged() {
        let f = sample_frame(None);
        let decoded = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn encode_decode_roundtrip_tagged() {
        let f = sample_frame(Some(VlanTag::new(6, 100)));
        let decoded = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn truncated_frames_rejected() {
        assert_eq!(
            EthernetFrame::decode(&[0u8; 13]),
            Err(DecodeFrameError::Truncated)
        );
        // Tagged frame cut inside the tag.
        let mut bytes = sample_frame(Some(VlanTag::new(0, 1))).encode().to_vec();
        bytes.truncate(16);
        assert_eq!(
            EthernetFrame::decode(&bytes),
            Err(DecodeFrameError::Truncated)
        );
    }

    #[test]
    fn multicast_bit_detected() {
        assert!(MacAddr::GPTP_MULTICAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::for_nic(1).is_multicast());
    }

    #[test]
    fn nic_macs_unique() {
        assert_ne!(MacAddr::for_nic(1), MacAddr::for_nic(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MacAddr::GPTP_MULTICAST.to_string(), "01:80:c2:00:00:0e");
    }

    #[test]
    fn serialization_time_at_gigabit() {
        let f = sample_frame(None);
        // 60 B padded + 4 FCS + 8 preamble = 72 B = 576 bits ≙ 576 ns at 1 Gb/s.
        assert_eq!(f.serialization_ns(1_000_000_000).as_nanos(), 576);
    }

    #[test]
    #[should_panic(expected = "VID 0 out of range")]
    fn vlan_vid_zero_rejected() {
        VlanTag::new(0, 0);
    }
}
