//! Egress-port transmission model: strict-priority queuing (IEEE 802.1Q)
//! with line-rate serialization.
//!
//! A port transmits one frame at a time; while busy, arriving frames
//! queue per traffic class and the highest PCP wins when the port frees
//! (no preemption — a 1500 B best-effort frame in flight delays even a
//! PCP-7 gPTP frame by up to ~12 µs at 1 Gb/s, which is precisely why
//! gPTP relies on hardware timestamping rather than low latency).
//!
//! The type is generic over the queued payload so the simulation world
//! can carry its transmission context alongside the frame.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tsn_time::{Nanos, SimTime};

#[derive(Debug)]
struct QEntry<T> {
    /// Strict priority (higher first), then FIFO within a class.
    key: (Reverse<u8>, u64),
    item: T,
}

impl<T> PartialEq for QEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for QEntry<T> {}
impl<T> PartialOrd for QEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: we want the smallest key (highest
        // priority via Reverse, earliest seq) on top, so compare reversed.
        other.key.cmp(&self.key)
    }
}

/// One egress port's transmission state.
///
/// # Examples
///
/// ```
/// use tsn_netsim::EgressPort;
/// use tsn_time::{Nanos, SimTime};
///
/// let mut port: EgressPort<&str> = EgressPort::new();
/// let t = SimTime::from_millis(1);
/// assert!(!port.is_busy(t));
/// port.begin_transmission(t, Nanos::from_micros(12));
/// port.enqueue(0, "best effort");
/// port.enqueue(7, "gptp sync");
/// // When the port frees, the PCP-7 frame goes first.
/// assert_eq!(port.pop_ready(), Some((7, "gptp sync")));
/// assert_eq!(port.pop_ready(), Some((0, "best effort")));
/// ```
#[derive(Debug)]
pub struct EgressPort<T> {
    busy_until: SimTime,
    heap: BinaryHeap<QEntry<T>>,
    next_seq: u64,
    /// Total frames that waited in the queue (diagnostic).
    pub queued_frames: u64,
}

impl<T> Default for EgressPort<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EgressPort<T> {
    /// Creates an idle port.
    pub fn new() -> Self {
        EgressPort {
            busy_until: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            queued_frames: 0,
        }
    }

    /// `true` if a frame is on the wire at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.busy_until
    }

    /// The instant the in-flight frame completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Marks the port busy for `duration` starting at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the port is already busy at `now` — the caller must
    /// serialize transmissions.
    pub fn begin_transmission(&mut self, now: SimTime, duration: Nanos) {
        assert!(!self.is_busy(now), "port already transmitting");
        self.busy_until = now + duration;
    }

    /// Queues an item at `priority` (0–7, higher first).
    pub fn enqueue(&mut self, priority: u8, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queued_frames += 1;
        self.heap.push(QEntry {
            key: (Reverse(priority), seq),
            item,
        });
    }

    /// Pops the next item to transmit: highest priority, FIFO within a
    /// class.
    pub fn pop_ready(&mut self) -> Option<(u8, T)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.item))
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dequeue order is strict priority, FIFO within a class, and
        /// conserves every enqueued item.
        #[test]
        fn strict_priority_fifo_conservation(
            items in proptest::collection::vec((0u8..8, any::<u32>()), 1..100)
        ) {
            let mut port: EgressPort<(usize, u32)> = EgressPort::new();
            for (idx, (prio, payload)) in items.iter().enumerate() {
                port.enqueue(*prio, (idx, *payload));
            }
            let mut out = Vec::new();
            while let Some((prio, item)) = port.pop_ready() {
                out.push((prio, item));
            }
            prop_assert_eq!(out.len(), items.len());
            // Priorities non-increasing.
            for w in out.windows(2) {
                prop_assert!(w[0].0 >= w[1].0);
            }
            // FIFO within each class: original indices increase.
            for p in 0u8..8 {
                let idxs: Vec<usize> = out
                    .iter()
                    .filter(|(prio, _)| *prio == p)
                    .map(|(_, (idx, _))| *idx)
                    .collect();
                for w in idxs.windows(2) {
                    prop_assert!(w[0] < w[1], "class {p} reordered");
                }
            }
            // Conservation: the multiset of payloads survives.
            let mut sent: Vec<u32> = items.iter().map(|(_, p)| *p).collect();
            let mut got: Vec<u32> = out.iter().map(|(_, (_, p))| *p).collect();
            sent.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(sent, got);
        }

        /// Busy windows never overlap when transmissions are serialized
        /// through `busy_until`.
        #[test]
        fn busy_windows_disjoint(durations in proptest::collection::vec(1i64..10_000, 1..50)) {
            let mut port: EgressPort<u32> = EgressPort::new();
            let mut t = SimTime::from_nanos(0);
            for (i, d) in durations.iter().enumerate() {
                prop_assert!(!port.is_busy(t));
                port.begin_transmission(t, Nanos::from_nanos(*d));
                let end = port.busy_until();
                prop_assert_eq!(end, t + Nanos::from_nanos(*d), "duration index {}", i);
                t = end; // next transmission starts when this one ends
            }
        }
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl<T: Snap> SnapState for EgressPort<T> {
    fn save_state(&self, w: &mut Writer) {
        self.busy_until.put(w);
        self.next_seq.put(w);
        self.queued_frames.put(w);
        // Canonical order: the heap key (priority descending, FIFO seq),
        // which is a total order because seq is unique.
        let mut entries: Vec<&QEntry<T>> = self.heap.iter().collect();
        entries.sort_by_key(|e| e.key);
        entries.len().put(w);
        for e in entries {
            e.key.0 .0.put(w);
            e.key.1.put(w);
            e.item.put(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.busy_until = Snap::get(r)?;
        self.next_seq = Snap::get(r)?;
        self.queued_frames = Snap::get(r)?;
        let n = usize::get(r)?;
        self.heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let prio = u8::get(r)?;
            let seq = u64::get(r)?;
            let item = T::get(r)?;
            self.heap.push(QEntry {
                key: (Reverse(prio), seq),
                item,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_port_not_busy() {
        let port: EgressPort<u32> = EgressPort::new();
        assert!(!port.is_busy(SimTime::from_secs(1)));
        assert!(port.is_empty());
    }

    #[test]
    fn busy_window_tracks_duration() {
        let mut port: EgressPort<u32> = EgressPort::new();
        let t = SimTime::from_millis(5);
        port.begin_transmission(t, Nanos::from_micros(12));
        assert!(port.is_busy(t + Nanos::from_micros(11)));
        assert!(!port.is_busy(t + Nanos::from_micros(12)));
        assert_eq!(port.busy_until(), t + Nanos::from_micros(12));
    }

    #[test]
    fn strict_priority_then_fifo() {
        let mut port: EgressPort<&str> = EgressPort::new();
        port.enqueue(0, "be-1");
        port.enqueue(7, "ptp-1");
        port.enqueue(0, "be-2");
        port.enqueue(7, "ptp-2");
        port.enqueue(6, "probe");
        let order: Vec<&str> = std::iter::from_fn(|| port.pop_ready().map(|(_, i)| i)).collect();
        assert_eq!(order, vec!["ptp-1", "ptp-2", "probe", "be-1", "be-2"]);
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn overlapping_transmissions_rejected() {
        let mut port: EgressPort<u32> = EgressPort::new();
        let t = SimTime::from_millis(1);
        port.begin_transmission(t, Nanos::from_micros(10));
        port.begin_transmission(t + Nanos::from_micros(5), Nanos::from_micros(10));
    }

    #[test]
    fn queue_counter_tracks() {
        let mut port: EgressPort<u32> = EgressPort::new();
        for i in 0..5 {
            port.enqueue(0, i);
        }
        assert_eq!(port.queued_frames, 5);
        assert_eq!(port.len(), 5);
    }
}
