//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence number)`: ties in time are broken
//! by insertion order, which makes runs bit-for-bit reproducible for a
//! given seed regardless of hash-map iteration or allocator behavior.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tsn_time::{Nanos, SimTime};

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic event queue over an application-defined event type.
///
/// # Examples
///
/// ```
/// use tsn_netsim::EventQueue;
/// use tsn_time::{Nanos, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_millis(10), "b");
/// q.schedule_at(SimTime::from_millis(5), "a");
/// q.schedule_in(Nanos::from_millis(10), "c"); // relative to now (= 0)
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — events cannot be
    /// scheduled in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled at {at}, before current time {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` after a non-negative delay from the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        assert!(!delay.is_negative(), "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the current time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.event))
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(4), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
