//! Network topology: devices, ports, links, and path-delay bounds.
//!
//! A topology is a graph of *stations* (NIC endpoints — one per
//! clock-synchronization VM passthrough NIC) and *bridges* (the
//! integrated TSN switches), connected by full-duplex links with
//! per-direction delay models.
//!
//! Link delays have a static component (drawn once per experiment,
//! modeling cable length, PHY latency and switch port pipelines) plus
//! per-frame jitter. The static spread across links is what produces the
//! paper's reading error `E = d_max − d_min`; the per-frame jitter feeds
//! the measurement error γ.

use crate::frame::MacAddr;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use tsn_time::Nanos;

/// Identifies a device (station or bridge) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// A port number local to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortNo(pub u8);

/// A fully-qualified port address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortAddr {
    /// The device owning the port.
    pub device: DeviceId,
    /// The port number on that device.
    pub port: PortNo,
}

impl PortAddr {
    /// Convenience constructor.
    pub const fn new(device: DeviceId, port: u8) -> Self {
        PortAddr {
            device,
            port: PortNo(port),
        }
    }
}

impl fmt::Display for PortAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}:p{}", self.device.0, self.port.0)
    }
}

/// Identifies a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// Kind of device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// An end station (a NIC owned by one VM).
    Station,
    /// A TSN bridge (integrated switch).
    Bridge,
}

/// One-way link delay model: fixed static latency plus uniform per-frame
/// jitter in `[0, jitter_max)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Static latency (cable + PHY + fixed pipeline).
    pub base: Nanos,
    /// Exclusive upper bound of the uniform per-frame jitter.
    pub jitter_max: Nanos,
}

impl DelayModel {
    /// A constant delay with no jitter.
    pub const fn constant(base: Nanos) -> Self {
        DelayModel {
            base,
            jitter_max: Nanos::ZERO,
        }
    }

    /// Samples one frame's delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        if self.jitter_max > Nanos::ZERO {
            self.base + Nanos::from_nanos(rng.gen_range(0..self.jitter_max.as_nanos()))
        } else {
            self.base
        }
    }

    /// Minimum possible delay.
    pub fn min(&self) -> Nanos {
        self.base
    }

    /// Maximum possible delay (inclusive bound used for worst-case math).
    pub fn max(&self) -> Nanos {
        self.base + self.jitter_max
    }
}

/// A full-duplex link between two ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint.
    pub a: PortAddr,
    /// Second endpoint.
    pub b: PortAddr,
    /// Delay model in the `a → b` direction.
    pub delay_ab: DelayModel,
    /// Delay model in the `b → a` direction.
    pub delay_ba: DelayModel,
}

impl Link {
    /// The delay model for traffic leaving `from` on this link.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn delay_from(&self, from: PortAddr) -> &DelayModel {
        if from == self.a {
            &self.delay_ab
        } else if from == self.b {
            &self.delay_ba
        } else {
            panic!("{from} is not an endpoint of this link");
        }
    }

    /// The opposite endpoint of `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn peer_of(&self, from: PortAddr) -> PortAddr {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of this link");
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Device {
    name: String,
    kind: DeviceKind,
    mac: Option<MacAddr>,
}

/// The network graph.
///
/// # Examples
///
/// ```
/// use tsn_netsim::{Topology, DelayModel};
/// use tsn_time::Nanos;
///
/// let mut topo = Topology::new();
/// let nic = topo.add_station("nic1");
/// let sw = topo.add_bridge("sw1");
/// let d = DelayModel::constant(Nanos::from_micros(2));
/// topo.connect(topo.port(nic, 0), topo.port(sw, 0), d, d);
/// assert_eq!(topo.peer(topo.port(nic, 0)), Some(topo.port(sw, 0)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    port_link: HashMap<PortAddr, LinkId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds an end station, returning its id.
    pub fn add_station(&mut self, name: &str) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(Device {
            name: name.to_owned(),
            kind: DeviceKind::Station,
            mac: Some(MacAddr::for_nic(id.0 as u32)),
        });
        id
    }

    /// Adds a bridge (switch), returning its id.
    pub fn add_bridge(&mut self, name: &str) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(Device {
            name: name.to_owned(),
            kind: DeviceKind::Bridge,
            mac: None,
        });
        id
    }

    /// A port address on `device`.
    pub fn port(&self, device: DeviceId, port: u8) -> PortAddr {
        PortAddr::new(device, port)
    }

    /// Connects two ports with a full-duplex link.
    ///
    /// # Panics
    ///
    /// Panics if either port is already connected or a device id is
    /// unknown.
    pub fn connect(
        &mut self,
        a: PortAddr,
        b: PortAddr,
        delay_ab: DelayModel,
        delay_ba: DelayModel,
    ) -> LinkId {
        assert!(a.device.0 < self.devices.len(), "unknown device {}", a);
        assert!(b.device.0 < self.devices.len(), "unknown device {}", b);
        assert!(!self.port_link.contains_key(&a), "port {a} already wired");
        assert!(!self.port_link.contains_key(&b), "port {b} already wired");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            delay_ab,
            delay_ba,
        });
        self.port_link.insert(a, id);
        self.port_link.insert(b, id);
        id
    }

    /// Device kind.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn kind(&self, id: DeviceId) -> DeviceKind {
        self.devices[id.0].kind
    }

    /// Device display name.
    pub fn name(&self, id: DeviceId) -> &str {
        &self.devices[id.0].name
    }

    /// The station's MAC address (`None` for bridges, which forward on
    /// all ports rather than terminate traffic).
    pub fn mac(&self, id: DeviceId) -> Option<MacAddr> {
        self.devices[id.0].mac
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// All station device ids.
    pub fn stations(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices()
            .filter(|&d| self.kind(d) == DeviceKind::Station)
    }

    /// The link attached to a port, if any.
    pub fn link_of(&self, port: PortAddr) -> Option<(LinkId, &Link)> {
        self.port_link.get(&port).map(|&id| (id, &self.links[id.0]))
    }

    /// The port on the other end of `port`'s link, if wired.
    pub fn peer(&self, port: PortAddr) -> Option<PortAddr> {
        self.link_of(port).map(|(_, l)| l.peer_of(port))
    }

    /// Ports of `device` that are wired to something.
    pub fn wired_ports(&self, device: DeviceId) -> Vec<PortAddr> {
        let mut ports: Vec<PortAddr> = self
            .port_link
            .keys()
            .filter(|p| p.device == device)
            .copied()
            .collect();
        ports.sort();
        ports
    }

    /// Shortest path (by hop count, deterministic tie-break on device id)
    /// from station `from` to station `to`, traversing only bridges.
    /// Returns the sequence of links, or `None` if unreachable.
    pub fn shortest_path(&self, from: DeviceId, to: DeviceId) -> Option<Vec<LinkId>> {
        if from == to {
            return Some(Vec::new());
        }
        // BFS over devices; intermediate hops must be bridges.
        let mut prev: HashMap<DeviceId, (DeviceId, LinkId)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(dev) = queue.pop_front() {
            if dev != from && self.kind(dev) != DeviceKind::Bridge {
                continue; // stations do not forward
            }
            // Deterministic neighbor order: by port number.
            for port in self.wired_ports(dev) {
                let (lid, link) = self.link_of(port).expect("wired port has link");
                let peer = link.peer_of(port);
                let nd = peer.device;
                if nd == from || prev.contains_key(&nd) {
                    continue;
                }
                prev.insert(nd, (dev, lid));
                if nd == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, l) = prev[&cur];
                        path.push(l);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(nd);
            }
        }
        None
    }

    /// Minimum-delay path from station `from` to station `to` (Dijkstra
    /// over per-link minimum delays, traversing only bridges). Useful
    /// when hop count and latency disagree (e.g. a short detour through
    /// fast links). Returns the link sequence, or `None` if unreachable.
    pub fn fastest_path(&self, from: DeviceId, to: DeviceId) -> Option<Vec<LinkId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if from == to {
            return Some(Vec::new());
        }
        let mut best: HashMap<DeviceId, i64> = HashMap::new();
        let mut prev: HashMap<DeviceId, (DeviceId, LinkId)> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        best.insert(from, 0);
        heap.push(Reverse((0, from.0)));
        while let Some(Reverse((cost, dev_idx))) = heap.pop() {
            let dev = DeviceId(dev_idx);
            if dev == to {
                let mut path = Vec::new();
                let mut cur = to;
                while cur != from {
                    let (p, l) = prev[&cur];
                    path.push(l);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if cost > best.get(&dev).copied().unwrap_or(i64::MAX) {
                continue;
            }
            if dev != from && self.kind(dev) != DeviceKind::Bridge {
                continue;
            }
            for port in self.wired_ports(dev) {
                let (lid, link) = self.link_of(port).expect("wired");
                let next = link.peer_of(port).device;
                let ncost = cost + link.delay_from(port).min().as_nanos();
                if ncost < best.get(&next).copied().unwrap_or(i64::MAX) {
                    best.insert(next, ncost);
                    prev.insert(next, (dev, lid));
                    heap.push(Reverse((ncost, next.0)));
                }
            }
        }
        None
    }

    /// Min/max one-way delay bounds along the shortest path between two
    /// stations, summing per-link bounds in the traversal direction and a
    /// per-bridge residence bound for each intermediate bridge.
    ///
    /// Returns `None` if the stations are not connected.
    pub fn path_delay_bounds(
        &self,
        from: DeviceId,
        to: DeviceId,
        residence_min: Nanos,
        residence_max: Nanos,
    ) -> Option<(Nanos, Nanos)> {
        let path = self.shortest_path(from, to)?;
        if path.is_empty() {
            return Some((Nanos::ZERO, Nanos::ZERO));
        }
        let mut lo = Nanos::ZERO;
        let mut hi = Nanos::ZERO;
        // Walk the path to know the traversal direction of each link.
        let mut cur = from;
        for lid in &path {
            let link = &self.links[lid.0];
            let (dm, next) = if link.a.device == cur {
                (&link.delay_ab, link.b.device)
            } else {
                (&link.delay_ba, link.a.device)
            };
            lo += dm.min();
            hi += dm.max();
            cur = next;
        }
        let bridges = (path.len() - 1) as i64;
        lo += residence_min * bridges;
        hi += residence_max * bridges;
        Some((lo, hi))
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Builds a full mesh of `n` bridges (every pair directly linked)
    /// with the given symmetric delay on every link; returns the bridge
    /// ids. Mesh ports are allocated from `first_port` upward on each
    /// bridge.
    pub fn full_mesh_bridges(
        &mut self,
        n: usize,
        first_port: u8,
        delay: DelayModel,
    ) -> Vec<DeviceId> {
        let ids: Vec<DeviceId> = (0..n)
            .map(|i| self.add_bridge(&format!("sw{}", i + 1)))
            .collect();
        let mut next_port = vec![first_port; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let pa = next_port[a];
                let pb = next_port[b];
                next_port[a] += 1;
                next_port[b] += 1;
                self.connect(self.port(ids[a], pa), self.port(ids[b], pb), delay, delay);
            }
        }
        ids
    }

    /// Builds a line (daisy chain) of `n` bridges; returns the bridge
    /// ids. Each bridge uses `first_port` toward its predecessor and
    /// `first_port + 1` toward its successor.
    pub fn line_bridges(&mut self, n: usize, first_port: u8, delay: DelayModel) -> Vec<DeviceId> {
        let ids: Vec<DeviceId> = (0..n)
            .map(|i| self.add_bridge(&format!("sw{}", i + 1)))
            .collect();
        for w in ids.windows(2) {
            self.connect(
                self.port(w[0], first_port + 1),
                self.port(w[1], first_port),
                delay,
                delay,
            );
        }
        ids
    }

    /// `true` if every station can reach every other station through the
    /// bridges.
    pub fn fully_connected(&self) -> bool {
        let stations: Vec<DeviceId> = self.stations().collect();
        for i in 0..stations.len() {
            for j in (i + 1)..stations.len() {
                if self.shortest_path(stations[i], stations[j]).is_none() {
                    return false;
                }
            }
        }
        true
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, Writer};

impl Snap for DeviceId {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(DeviceId(usize::get(r)?))
    }
}

impl Snap for PortNo {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PortNo(u8::get(r)?))
    }
}

impl Snap for PortAddr {
    fn put(&self, w: &mut Writer) {
        self.device.put(w);
        self.port.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PortAddr {
            device: Snap::get(r)?,
            port: Snap::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay(us: i64) -> DelayModel {
        DelayModel::constant(Nanos::from_micros(us))
    }

    /// Two stations on one bridge; a third station two bridges away.
    fn small_topo() -> (Topology, DeviceId, DeviceId, DeviceId) {
        let mut t = Topology::new();
        let n1 = t.add_station("nic1");
        let n2 = t.add_station("nic2");
        let n3 = t.add_station("nic3");
        let sw1 = t.add_bridge("sw1");
        let sw2 = t.add_bridge("sw2");
        t.connect(t.port(n1, 0), t.port(sw1, 0), delay(2), delay(2));
        t.connect(t.port(n2, 0), t.port(sw1, 1), delay(2), delay(2));
        t.connect(t.port(sw1, 2), t.port(sw2, 0), delay(3), delay(3));
        t.connect(t.port(n3, 0), t.port(sw2, 1), delay(2), delay(2));
        (t, n1, n2, n3)
    }

    #[test]
    fn peer_resolution() {
        let (t, n1, _, _) = small_topo();
        let p = t.port(n1, 0);
        let peer = t.peer(p).unwrap();
        assert_eq!(t.kind(peer.device), DeviceKind::Bridge);
        assert_eq!(t.peer(peer), Some(p));
    }

    #[test]
    fn shortest_path_hops() {
        let (t, n1, n2, n3) = small_topo();
        assert_eq!(t.shortest_path(n1, n2).unwrap().len(), 2);
        assert_eq!(t.shortest_path(n1, n3).unwrap().len(), 3);
        assert_eq!(t.shortest_path(n1, n1).unwrap().len(), 0);
    }

    #[test]
    fn stations_do_not_forward() {
        let mut t = Topology::new();
        let a = t.add_station("a");
        let b = t.add_station("b");
        let c = t.add_station("c");
        let d = delay(1);
        // a - b - c in a line through station b: unreachable a→c.
        t.connect(t.port(a, 0), t.port(b, 0), d, d);
        t.connect(t.port(b, 1), t.port(c, 0), d, d);
        assert!(t.shortest_path(a, c).is_none());
        assert_eq!(t.shortest_path(a, b).unwrap().len(), 1);
    }

    #[test]
    fn path_delay_bounds_sum_links_and_residence() {
        let (t, n1, _, n3) = small_topo();
        let (lo, hi) = t
            .path_delay_bounds(n1, n3, Nanos::from_nanos(500), Nanos::from_micros(1))
            .unwrap();
        // Links: 2 + 3 + 2 = 7 µs; 2 intermediate bridges.
        assert_eq!(lo, Nanos::from_micros(7) + Nanos::from_nanos(1000));
        assert_eq!(hi, Nanos::from_micros(7) + Nanos::from_micros(2));
    }

    #[test]
    fn delay_model_sampling_within_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dm = DelayModel {
            base: Nanos::from_micros(2),
            jitter_max: Nanos::from_nanos(300),
        };
        for _ in 0..1000 {
            let d = dm.sample(&mut rng);
            assert!(d >= dm.min() && d < dm.max() + Nanos::from_nanos(1));
        }
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_rejected() {
        let mut t = Topology::new();
        let a = t.add_station("a");
        let b = t.add_station("b");
        let c = t.add_station("c");
        let d = delay(1);
        t.connect(t.port(a, 0), t.port(b, 0), d, d);
        t.connect(t.port(a, 0), t.port(c, 0), d, d);
    }

    #[test]
    fn fastest_path_prefers_low_latency_detour() {
        // a — sw1 — b via a slow direct link (10 µs) or a fast two-hop
        // detour through sw2 (1 µs + 1 µs).
        let mut t = Topology::new();
        let a = t.add_station("a");
        let b = t.add_station("b");
        let sw1 = t.add_bridge("sw1");
        let sw2 = t.add_bridge("sw2");
        t.connect(t.port(a, 0), t.port(sw1, 0), delay(1), delay(1));
        t.connect(t.port(b, 0), t.port(sw1, 1), delay(10), delay(10));
        t.connect(t.port(sw1, 2), t.port(sw2, 0), delay(1), delay(1));
        t.connect(t.port(sw2, 1), t.port(b, 1), delay(1), delay(1));
        // Hop-count shortest: 2 links (via the slow one).
        assert_eq!(t.shortest_path(a, b).unwrap().len(), 2);
        // Delay shortest: 3 links via sw2 (1 + 1 + 1 < 1 + 10).
        assert_eq!(t.fastest_path(a, b).unwrap().len(), 3);
        // Same endpoint: empty path.
        assert_eq!(t.fastest_path(a, a), Some(vec![]));
    }

    #[test]
    fn full_mesh_builder_wires_every_pair() {
        let mut t = Topology::new();
        let sws = t.full_mesh_bridges(4, 2, delay(2));
        assert_eq!(sws.len(), 4);
        // 4 choose 2 = 6 links.
        assert_eq!(t.links().len(), 6);
        for &a in &sws {
            for &b in &sws {
                if a != b {
                    assert_eq!(t.shortest_path(a, b).unwrap().len(), 1);
                }
            }
        }
    }

    #[test]
    fn line_builder_chains() {
        let mut t = Topology::new();
        let sws = t.line_bridges(5, 0, delay(1));
        assert_eq!(t.links().len(), 4);
        assert_eq!(t.shortest_path(sws[0], sws[4]).unwrap().len(), 4);
    }

    #[test]
    fn connectivity_check() {
        let mut t = Topology::new();
        let a = t.add_station("a");
        let b = t.add_station("b");
        let sw = t.add_bridge("sw");
        let d = delay(1);
        t.connect(t.port(a, 0), t.port(sw, 0), d, d);
        assert!(!t.fully_connected(), "b is unwired");
        t.connect(t.port(b, 0), t.port(sw, 1), d, d);
        assert!(t.fully_connected());
    }

    #[test]
    fn wired_ports_sorted() {
        let (t, _, _, _) = small_topo();
        let sw1 = DeviceId(3);
        let ports = t.wired_ports(sw1);
        assert_eq!(ports.len(), 3);
        assert!(ports.windows(2).all(|w| w[0] < w[1]));
    }
}
