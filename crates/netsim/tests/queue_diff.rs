//! Differential test harness: the timing-wheel event core vs the
//! reference `BinaryHeap` oracle.
//!
//! Both queue implementations promise the same observable contract — a
//! strict `(time, seq)` total order over interleaved data and control
//! streams, plus a shared canonical snapshot encoding. These tests drive
//! arbitrary interleavings of `schedule_at` / `schedule_in` /
//! `schedule_ctl_at` / pops through both implementations at once and
//! demand byte-identical behavior, including:
//!
//! * same-timestamp bursts (the tie-break order under test);
//! * far-future timestamps that land in the wheel's overflow heap
//!   (beyond the 2^36 ns super-window);
//! * wheel-rollover boundaries (offsets straddling slot/level edges).
//!
//! A mutation self-test deliberately breaks the tie-break in a
//! test-local queue variant and asserts the harness catches it — i.e.
//! the harness is demonstrably able to fail.

use proptest::prelude::*;
use tsn_netsim::{ReferenceQueue, WheelQueue};
use tsn_snapshot::codec::{Reader, SnapState, Writer};
use tsn_time::{Nanos, SimTime};

/// One step of an interleaved schedule/pop script. All times are offsets
/// from the queue's current `now()`, so scripts never schedule into the
/// past regardless of how many pops preceded them.
#[derive(Debug, Clone)]
enum Op {
    /// `schedule_at(now + offset)` — data stream.
    At(u64),
    /// `schedule_in(delay)` — data stream, relative form.
    In(u64),
    /// `schedule_ctl_at(now + offset)` — control stream.
    Ctl(u64),
    /// A same-timestamp burst of `k` data events at `now + offset`.
    Burst(u64, u8),
    /// Pop up to `k` events one at a time.
    Pop(u8),
    /// Pop every batch up to `now + horizon` (the event-loop form).
    PopBatch(u64),
}

/// Offsets chosen to exercise every wheel level and its edges: the wheel
/// is 4 levels x 512 slots (9 bits per level, 2^36 ns super-window).
fn offset_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Level 0: within the first 512 ns.
        0u64..512,
        // Levels 1-3.
        0u64..(1 << 18),
        0u64..(1 << 27),
        0u64..(1 << 36),
        // Exact slot/level boundaries and their neighbors (rollover).
        (0u64..4).prop_map(|k| (1u64 << 9) * (k + 1)),
        (0u64..4).prop_map(|k| (1u64 << 18) * (k + 1)),
        (0u64..4).prop_map(|k| (1u64 << 27) * (k + 1) - 1),
        Just((1u64 << 36) - 1),
        // Far future: past the super-window, into the overflow heap.
        (0u64..1024).prop_map(|k| (1u64 << 36) + k),
        (0u64..4).prop_map(|k| (1u64 << 36) * (k + 1) + 7),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        offset_strategy().prop_map(Op::At),
        offset_strategy().prop_map(Op::In),
        offset_strategy().prop_map(Op::Ctl),
        (offset_strategy(), 2u8..6).prop_map(|(o, k)| Op::Burst(o, k)),
        (1u8..8).prop_map(Op::Pop),
        offset_strategy().prop_map(Op::PopBatch),
    ]
}

/// Minimal queue interface the differential driver needs; lets the same
/// script run against the wheel, the reference heap, and the deliberately
/// broken mutant below.
trait Queue {
    fn now(&self) -> SimTime;
    fn schedule_at(&mut self, at: SimTime, event: u64);
    fn schedule_in(&mut self, delay: Nanos, event: u64);
    fn schedule_ctl_at(&mut self, at: SimTime, event: u64);
    fn pop_seq(&mut self) -> Option<(SimTime, u64, u64)>;
    fn pop_batch(&mut self, until: SimTime, out: &mut Vec<(SimTime, u64)>) -> usize;
    fn len(&self) -> usize;
}

macro_rules! impl_queue {
    ($t:ty) => {
        impl Queue for $t {
            fn now(&self) -> SimTime {
                <$t>::now(self)
            }
            fn schedule_at(&mut self, at: SimTime, event: u64) {
                <$t>::schedule_at(self, at, event)
            }
            fn schedule_in(&mut self, delay: Nanos, event: u64) {
                <$t>::schedule_in(self, delay, event)
            }
            fn schedule_ctl_at(&mut self, at: SimTime, event: u64) {
                <$t>::schedule_ctl_at(self, at, event)
            }
            fn pop_seq(&mut self) -> Option<(SimTime, u64, u64)> {
                <$t>::pop_seq(self)
            }
            fn pop_batch(&mut self, until: SimTime, out: &mut Vec<(SimTime, u64)>) -> usize {
                <$t>::pop_batch(self, until, out)
            }
            fn len(&self) -> usize {
                <$t>::len(self)
            }
        }
    };
}

impl_queue!(WheelQueue<u64>);
impl_queue!(ReferenceQueue<u64>);

/// Runs `ops` against both queues in lock-step and checks every
/// externally observable value for equality; then drains both to the end.
/// Returns `Err` (instead of panicking) so the mutation self-test can
/// assert the harness *does* catch a broken implementation.
fn run_differential(a: &mut dyn Queue, b: &mut dyn Queue, ops: &[Op]) -> Result<(), String> {
    let mut payload = 0u64;
    for (step, op) in ops.iter().enumerate() {
        if a.now() != b.now() {
            return Err(format!("step {step}: now {:?} != {:?}", a.now(), b.now()));
        }
        let now = a.now();
        match *op {
            Op::At(off) => {
                let at = SimTime::from_nanos(now.as_nanos() + off);
                a.schedule_at(at, payload);
                b.schedule_at(at, payload);
                payload += 1;
            }
            Op::In(off) => {
                let d = Nanos::from_nanos(off.min(i64::MAX as u64) as i64);
                a.schedule_in(d, payload);
                b.schedule_in(d, payload);
                payload += 1;
            }
            Op::Ctl(off) => {
                let at = SimTime::from_nanos(now.as_nanos() + off);
                a.schedule_ctl_at(at, payload);
                b.schedule_ctl_at(at, payload);
                payload += 1;
            }
            Op::Burst(off, k) => {
                let at = SimTime::from_nanos(now.as_nanos() + off);
                for _ in 0..k {
                    a.schedule_at(at, payload);
                    b.schedule_at(at, payload);
                    payload += 1;
                }
            }
            Op::Pop(k) => {
                for _ in 0..k {
                    let (x, y) = (a.pop_seq(), b.pop_seq());
                    if x != y {
                        return Err(format!("step {step}: pop_seq {x:?} != {y:?}"));
                    }
                    if x.is_none() {
                        break;
                    }
                }
            }
            Op::PopBatch(h) => {
                let until = SimTime::from_nanos(now.as_nanos() + h);
                let (mut xs, mut ys) = (Vec::new(), Vec::new());
                loop {
                    let (n, m) = (a.pop_batch(until, &mut xs), b.pop_batch(until, &mut ys));
                    if n != m {
                        return Err(format!("step {step}: batch size {n} != {m}"));
                    }
                    if n == 0 {
                        break;
                    }
                }
                if xs != ys {
                    return Err(format!("step {step}: batches {xs:?} != {ys:?}"));
                }
            }
        }
        if a.len() != b.len() {
            return Err(format!("step {step}: len {} != {}", a.len(), b.len()));
        }
    }
    // Drain to the end: the full residual (time, seq, event) sequences
    // must agree, element for element.
    loop {
        let (x, y) = (a.pop_seq(), b.pop_seq());
        if x != y {
            return Err(format!("drain: pop_seq {x:?} != {y:?}"));
        }
        if x.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The tentpole guarantee: wheel and reference heap emit identical
    /// `(time, seq, event)` sequences under arbitrary interleavings.
    #[test]
    fn wheel_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..160)) {
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut reference: ReferenceQueue<u64> = ReferenceQueue::new();
        if let Err(e) = run_differential(&mut wheel, &mut reference, &ops) {
            prop_assert!(false, "differential mismatch: {e}");
        }
    }

    /// Snapshot round-trip: encode the wheel mid-script, restore into a
    /// fresh wheel, and the two must be indistinguishable from then on —
    /// equal re-encodings and equal full drains.
    #[test]
    fn wheel_snapshot_roundtrip(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        split in 0usize..100,
    ) {
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut reference: ReferenceQueue<u64> = ReferenceQueue::new();
        let split = split.min(ops.len());
        run_differential(&mut wheel, &mut reference, &ops[..split]).unwrap();

        let mut w = Writer::new();
        wheel.save_state(&mut w);
        let bytes = w.into_bytes();

        // The canonical encoding is shared: the reference queue driven by
        // the same script must encode to the very same bytes.
        let mut w2 = Writer::new();
        reference.save_state(&mut w2);
        prop_assert_eq!(&bytes, &w2.into_bytes(), "canonical encodings diverge");

        let mut restored: WheelQueue<u64> = WheelQueue::new();
        let mut r = Reader::new(&bytes);
        restored.load_state(&mut r).expect("decode wheel state");
        r.finish().expect("no trailing bytes");

        let mut w3 = Writer::new();
        restored.save_state(&mut w3);
        prop_assert_eq!(&bytes, &w3.into_bytes(), "re-encoding diverges");

        if let Err(e) = run_differential(&mut restored, &mut reference, &ops[split..]) {
            prop_assert!(false, "restored wheel diverges: {e}");
        }
    }

    /// Cross-implementation restore: a snapshot taken mid-run on the
    /// wheel restores onto the reference queue (and vice versa), and the
    /// pair stays byte-identical — equal encodings after every further
    /// epoch of operations and equal drains.
    #[test]
    fn cross_impl_snapshot_restore(
        epochs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..24), 1..6),
    ) {
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut reference: ReferenceQueue<u64> = ReferenceQueue::new();
        run_differential(&mut wheel, &mut reference, &epochs[0]).unwrap();

        // Wheel -> reference.
        let mut w = Writer::new();
        wheel.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut onto_ref: ReferenceQueue<u64> = ReferenceQueue::new();
        onto_ref.load_state(&mut Reader::new(&bytes)).expect("wheel state onto reference");

        // Reference -> wheel.
        let mut w = Writer::new();
        reference.save_state(&mut w);
        let mut onto_wheel: WheelQueue<u64> = WheelQueue::new();
        onto_wheel.load_state(&mut Reader::new(&w.into_bytes())).expect("reference state onto wheel");

        // Run every subsequent epoch on both restored queues; after each
        // epoch their canonical encodings (hence state hashes) must match.
        for (i, epoch) in epochs[1..].iter().enumerate() {
            if let Err(e) = run_differential(&mut onto_wheel, &mut onto_ref, epoch) {
                prop_assert!(false, "epoch {}: cross-restored pair diverges: {e}", i + 1);
            }
            let mut wa = Writer::new();
            onto_wheel.save_state(&mut wa);
            let mut wb = Writer::new();
            onto_ref.save_state(&mut wb);
            prop_assert_eq!(wa.into_bytes(), wb.into_bytes(), "epoch {} encodings", i + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Mutation self-test: prove the harness can fail.
// ---------------------------------------------------------------------

/// A deliberately broken queue: orders by `at` **only**, discarding the
/// sequence-number tie-break. `BinaryHeap` is not stable for equal keys,
/// so same-timestamp bursts come out in sift order, not insertion order.
mod broken {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use tsn_netsim::CTL_SEQ_BASE;
    use tsn_time::{Nanos, SimTime};

    struct Entry {
        at: SimTime,
        seq: u64,
        event: u64,
    }

    // The mutation: the tie-break is gone. Everything else mirrors the
    // reference implementation.
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other.at.cmp(&self.at) // reversed: BinaryHeap is a max-heap
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at
        }
    }
    impl Eq for Entry {}

    #[derive(Default)]
    pub struct AtOnlyQueue {
        heap: BinaryHeap<Entry>,
        now: SimTime,
        next_seq: u64,
        next_ctl: u64,
    }

    impl super::Queue for AtOnlyQueue {
        fn now(&self) -> SimTime {
            self.now
        }
        fn schedule_at(&mut self, at: SimTime, event: u64) {
            assert!(at >= self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }
        fn schedule_in(&mut self, delay: Nanos, event: u64) {
            self.schedule_at(self.now + delay, event);
        }
        fn schedule_ctl_at(&mut self, at: SimTime, event: u64) {
            assert!(at >= self.now);
            let seq = CTL_SEQ_BASE + self.next_ctl;
            self.next_ctl += 1;
            self.heap.push(Entry { at, seq, event });
        }
        fn pop_seq(&mut self) -> Option<(SimTime, u64, u64)> {
            let e = self.heap.pop()?;
            self.now = e.at;
            Some((e.at, e.seq, e.event))
        }
        fn pop_batch(&mut self, until: SimTime, out: &mut Vec<(SimTime, u64)>) -> usize {
            let Some(t) = self.heap.peek().map(|e| e.at) else {
                return 0;
            };
            if t > until {
                return 0;
            }
            let mut n = 0;
            while self.heap.peek().map(|e| e.at) == Some(t) {
                let (at, _, ev) = self.pop_seq().expect("peeked");
                out.push((at, ev));
                n += 1;
            }
            n
        }
        fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

/// Breaking the tie-break must be *caught* by the differential harness:
/// a same-timestamp burst through the at-only mutant diverges from the
/// wheel. If this test fails, the harness has lost its teeth.
#[test]
fn harness_catches_broken_tiebreak() {
    let ops = vec![Op::Burst(100, 4), Op::Pop(4)];
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut mutant = broken::AtOnlyQueue::default();
    let err = run_differential(&mut wheel, &mut mutant, &ops)
        .expect_err("differential harness failed to flag the broken tie-break");
    assert!(err.contains("pop_seq"), "unexpected failure shape: {err}");

    // Sanity: the same script against the true reference passes.
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut reference: ReferenceQueue<u64> = ReferenceQueue::new();
    run_differential(&mut wheel, &mut reference, &ops).expect("honest pair must agree");
}
