//! Ablation ABL4: hypervisor monitor period versus takeover behavior,
//! plus the CLOCK_SYNCTIME discipline (feedback, as in the paper's
//! prototype, versus the feed-forward design its §III-C proposes).

use clocksync::{scenario, TestbedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_faults::InjectorConfig;
use tsn_hyp::SyncClockDiscipline;
use tsn_time::Nanos;

fn config(monitor_ms: i64, discipline: SyncClockDiscipline, seed: u64) -> TestbedConfig {
    let duration = Nanos::from_secs(600);
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.monitor.period = Nanos::from_millis(monitor_ms);
    cfg.monitor.freshness_timeout = Nanos::from_millis(monitor_ms * 4);
    cfg.sync_clock_discipline = discipline;
    cfg.fault_injection = Some(InjectorConfig {
        duration,
        gm_shutdown_period: Nanos::from_secs(150),
        random_per_hour_min: 4,
        random_per_hour_max: 8,
        downtime_min: Nanos::from_secs(20),
        downtime_max: Nanos::from_secs(40),
        ..InjectorConfig::paper_default()
    });
    cfg
}

fn quality_report() {
    eprintln!("\n== ABL4a quality: monitor period (10 min, dense faults) ==");
    for period in [62i64, 125, 500] {
        let r = scenario::run(config(period, SyncClockDiscipline::Feedback, 17)).result;
        let stats = r.series.stats().expect("samples");
        eprintln!(
            "  monitor {period:>3} ms: takeovers = {:>2}  avg = {:>6.0} ns  max = {:>10}  within = {:.4}",
            r.counters.takeovers,
            stats.mean,
            format!("{}", stats.max),
            r.series.fraction_within(r.bounds.pi_plus_gamma())
        );
    }
    eprintln!("  (detection latency is nearly free: the affine STSHMEM page free-runs");
    eprintln!("   accurately across the gap; the promoted VM's clock quality dominates)");

    // The discipline comparison needs longer windows so the clock-read
    // spike statistics are meaningful (30 min, fault-free, 3 seeds).
    eprintln!("\n== ABL4b quality: CLOCK_SYNCTIME discipline (30 min, fault-free, 3 seeds) ==");
    for (label, discipline) in [
        ("feedback", SyncClockDiscipline::Feedback),
        ("feed-forward", SyncClockDiscipline::FeedForward),
    ] {
        let mut worst = Nanos::ZERO;
        let mut sum = 0.0;
        let mut spiky = 0usize;
        let mut total = 0usize;
        for seed in [17u64, 18, 19] {
            let mut cfg = TestbedConfig::paper_default(seed);
            cfg.duration = Nanos::from_secs(1800);
            cfg.sync_clock_discipline = discipline;
            let r = scenario::run(cfg).result;
            let stats = r.series.stats().expect("samples");
            worst = worst.max(stats.max);
            sum += stats.mean;
            spiky += r
                .series
                .samples()
                .iter()
                .filter(|s| s.value > Nanos::from_micros(2))
                .count();
            total += stats.count;
        }
        eprintln!(
            "  {label:<13} avg = {:>6.0} ns  worst spike = {:>10}  samples > 2 us: {:.3} %",
            sum / 3.0,
            format!("{worst}"),
            100.0 * spiky as f64 / total as f64
        );
    }
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_monitor");
    group.sample_size(10);
    for period in [62i64, 500] {
        group.bench_with_input(BenchmarkId::new("run_10min", period), &period, |b, &p| {
            b.iter(|| scenario::run(config(p, SyncClockDiscipline::Feedback, 17)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
