//! Ablation ABL2: precision versus the number of gPTP domains M.
//!
//! The paper runs M = 4 (the minimum satisfying N ≥ 3f + 1 for f = 1
//! with a spare). More domains add redundancy — and aggregation noise
//! averaging — at the cost of more traffic. Quality (steady-state
//! precision) is printed once per variant; runtime is benchmarked.

use clocksync::{scenario, TestbedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_faults::KernelAssignment;
use tsn_time::Nanos;

fn config(m: usize, seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(90);
    cfg.nodes = m;
    cfg.aggregation.domains = m;
    cfg.kernels = KernelAssignment::identical(m);
    cfg
}

fn quality_report() {
    eprintln!("\n== ABL2 quality: precision vs domain count ==");
    for m in [4usize, 5, 6, 7] {
        let r = scenario::run(config(m, 11)).result;
        let stats = r.series.stats().expect("samples");
        eprintln!(
            "  M = {m}: avg = {:>7.0} ns  max = {:>10}  Pi = {}",
            stats.mean,
            format!("{}", stats.max),
            r.bounds.pi
        );
    }
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_domains");
    group.sample_size(10);
    for m in [4usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("run_90s", m), &m, |b, &m| {
            b.iter(|| scenario::run(config(m, 11)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
