//! Ablation ABL5 — the paper's future work, quantified: unikernel
//! clock-sync VMs (Unikraft) versus full Linux VMs.
//!
//! §IV: "they combine predominant performance concerning runtime
//! overhead and boot times with a small memory footprint aiding failure
//! recovery." We model a unikernel clock-sync VM as (a) booting in
//! seconds instead of the better part of two minutes and (b) exhibiting
//! far fewer transient software-stack faults (minimal code base, no igb
//! timestamp-timeout pathology). The quality report shows how much
//! grandmaster *downtime exposure* — the window in which one domain is
//! missing from the FTA — shrinks.

use clocksync::{scenario, TestbedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_faults::{InjectorConfig, TransientFaultConfig};
use tsn_metrics::ExperimentEvent;
use tsn_time::Nanos;

#[derive(Clone, Copy)]
struct Profile {
    name: &'static str,
    downtime_min: Nanos,
    downtime_max: Nanos,
    transient: TransientFaultConfig,
}

fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "linux",
            downtime_min: Nanos::from_secs(45),
            downtime_max: Nanos::from_secs(120),
            transient: TransientFaultConfig::default(),
        },
        Profile {
            name: "unikernel",
            downtime_min: Nanos::from_secs(2),
            downtime_max: Nanos::from_secs(5),
            transient: TransientFaultConfig {
                tx_timestamp_timeout_prob: 1e-5,
                deadline_miss_prob: 1e-5,
            },
        },
    ]
}

fn config(p: Profile, seed: u64) -> TestbedConfig {
    let duration = Nanos::from_secs(1200);
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.transient = p.transient;
    cfg.fault_injection = Some(InjectorConfig {
        duration,
        gm_shutdown_period: Nanos::from_secs(200),
        random_per_hour_min: 2,
        random_per_hour_max: 6,
        downtime_min: p.downtime_min,
        downtime_max: p.downtime_max,
        ..InjectorConfig::paper_default()
    });
    cfg
}

fn quality_report() {
    eprintln!("\n== ABL5 quality: Linux VMs vs unikernel clock-sync VMs (20 min, dense faults) ==");
    for p in profiles() {
        let r = scenario::run(config(p, 19)).result;
        let stats = r.series.stats().expect("samples");
        let rejoins = r
            .events
            .count(|e| matches!(e, ExperimentEvent::GmResumed { .. }));
        eprintln!(
            "  {:<9} GM failures = {:>2}  rejoins = {:>2}  no-quorum intervals = {:>4}  avg = {:>6.0} ns  max = {:>10}  tx timeouts = {}",
            p.name,
            r.counters.gm_failures,
            rejoins,
            r.counters.no_quorum,
            stats.mean,
            format!("{}", stats.max),
            r.counters.tx_timestamp_timeouts,
        );
    }
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_unikernel");
    group.sample_size(10);
    for p in profiles() {
        group.bench_with_input(BenchmarkId::new("run_20min", p.name), &p, |b, p| {
            b.iter(|| scenario::run(config(*p, 19)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
