//! Microbenchmarks of the hot paths: FTA aggregation, gPTP codecs, the
//! PI servo, the discrete-event queue, and world checkpoint/restore.

use clocksync::{TestbedConfig, World, WorldSnapshot};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_fta::{fault_tolerant_average, AggregationMethod};
use tsn_gptp::msg::{FollowUpTlv, Header, Message, MessageType};
use tsn_gptp::{ClockIdentity, PortIdentity, PtpTimestamp};
use tsn_netsim::{EventQueue, ReferenceQueue, WheelQueue};
use tsn_time::{ClockTime, Nanos, PiServo, ServoConfig, SimTime};

fn bench_fta(c: &mut Criterion) {
    let mut group = c.benchmark_group("fta");
    for n in [4usize, 8, 16, 64] {
        let offsets: Vec<Nanos> = (0..n)
            .map(|i| Nanos::from_nanos((i as i64 * 37) % 1000 - 500))
            .collect();
        group.bench_with_input(BenchmarkId::new("aggregate", n), &offsets, |b, offs| {
            b.iter(|| fault_tolerant_average(black_box(offs), 1))
        });
    }
    let offsets: Vec<Nanos> = (0..4).map(|i| Nanos::from_nanos(i * 100)).collect();
    for (name, method) in [
        ("mean", AggregationMethod::Mean),
        ("median", AggregationMethod::Median),
        ("fta_f1", AggregationMethod::FaultTolerantAverage { f: 1 }),
    ] {
        group.bench_function(name, |b| b.iter(|| method.aggregate(black_box(&offsets))));
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let fu = Message::FollowUp {
        header: Header::new(
            MessageType::FollowUp,
            1,
            PortIdentity::new(ClockIdentity::for_index(1), 1),
            42,
            -3,
        ),
        precise_origin: PtpTimestamp::from_clock_time(ClockTime::from_nanos(1_234_567_890_123)),
        tlv: FollowUpTlv {
            cumulative_scaled_rate_offset: -12345,
            ..Default::default()
        },
    };
    group.bench_function("encode_follow_up", |b| b.iter(|| black_box(&fu).encode()));
    let bytes = fu.encode();
    group.bench_function("decode_follow_up", |b| {
        b.iter(|| Message::decode(black_box(&bytes)).unwrap())
    });
    let sync = Message::Sync {
        header: Header::new(
            MessageType::Sync,
            1,
            PortIdentity::new(ClockIdentity::for_index(1), 1),
            42,
            -3,
        ),
        origin: PtpTimestamp::default(),
    };
    let sync_bytes = sync.encode();
    group.bench_function("decode_sync", |b| {
        b.iter(|| Message::decode(black_box(&sync_bytes)).unwrap())
    });
    group.finish();
}

fn bench_servo(c: &mut Criterion) {
    c.bench_function("servo_sample", |b| {
        let mut servo = PiServo::new(ServoConfig::default(), Nanos::from_millis(125));
        let mut t = ClockTime::ZERO;
        b.iter(|| {
            t = t + Nanos::from_millis(125);
            servo.sample(black_box(Nanos::from_nanos(137)), t)
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

/// Head-to-head timing wheel vs reference `BinaryHeap`, on the two
/// patterns that matter: a bulk push-then-drain (classic heap turf) and
/// the simulator's steady-state churn — pop one event, schedule the
/// next a few µs–ms ahead, standing population a few dozen.
fn bench_queue_impls(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_impls");
    macro_rules! impl_benches {
        ($name:literal, $Q:ty) => {
            group.bench_function(concat!($name, "/push_drain_1k"), |b| {
                b.iter(|| {
                    let mut q: $Q = <$Q>::new();
                    for i in 0..1000u64 {
                        q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000), i);
                    }
                    let mut acc = 0u64;
                    while let Some((_, e)) = q.pop() {
                        acc = acc.wrapping_add(e);
                    }
                    acc
                })
            });
            group.bench_function(concat!($name, "/steady_churn_10k"), |b| {
                b.iter(|| {
                    let mut q: $Q = <$Q>::new();
                    for i in 0..64u64 {
                        q.schedule_at(SimTime::from_nanos(i * 131_071), i);
                    }
                    let mut acc = 0u64;
                    for i in 0..10_000u64 {
                        let (now, e) = q.pop().expect("standing population");
                        acc = acc.wrapping_add(e);
                        // The sim's gap profile: µs to low ms ahead.
                        let gap = 1_000 + (i * 48_271) % 3_000_000;
                        q.schedule_at(now + Nanos::from_nanos(gap as i64), i);
                    }
                    acc
                })
            });
        };
    }
    impl_benches!("wheel", WheelQueue<u64>);
    impl_benches!("reference", ReferenceQueue<u64>);
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    let cfg = TestbedConfig {
        warmup: Nanos::from_secs(3),
        duration: Nanos::from_secs(3),
        ..TestbedConfig::quick(1)
    };
    let mut world = World::new(cfg.clone());
    world.run_until(SimTime::from_secs(3));
    group.bench_function("capture", |b| b.iter(|| world.snapshot()));
    let snap = world.snapshot();
    group.bench_function("encode", |b| b.iter(|| black_box(&snap).encode()));
    let bytes = snap.encode();
    group.bench_function("decode", |b| {
        b.iter(|| WorldSnapshot::decode(black_box(&bytes)).unwrap())
    });
    group.bench_function("restore", |b| {
        b.iter(|| World::restore(cfg.clone(), black_box(&snap)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fta,
    bench_codec,
    bench_servo,
    bench_event_queue,
    bench_queue_impls,
    bench_snapshot
);
criterion_main!(benches);
