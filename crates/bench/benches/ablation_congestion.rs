//! Ablation ABL6: gPTP under network congestion (beyond the paper).
//!
//! Best-effort background traffic loads every egress port; 802.1Q strict
//! priority (the TSN configuration) can be switched off as a baseline.
//! The quality report contrasts two very different victims:
//!
//! * the *synchronization itself* (ground-truth PHC spread) — robust,
//!   because two-step hardware timestamping measures and compensates
//!   every queuing delay a Sync experiences;
//! * the *precision measurement* (Π* via probe packets) — degrades with
//!   load, because probe arrival jitter enters Eq. 3.1 directly. This is
//!   exactly the asymmetry the paper's measurement error γ formalizes,
//!   and why its methodology pins the probe paths with a dedicated VLAN.

use clocksync::{BackgroundTraffic, TestbedConfig, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_time::Nanos;

fn config(load: f64, priority: bool, seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(30);
    if load > 0.0 {
        cfg.background = Some(BackgroundTraffic {
            load,
            frame_bytes: 1500,
            priority_isolation: priority,
        });
    }
    cfg
}

fn quality_report() {
    eprintln!("\n== ABL6 quality: congestion (30 s runs) ==");
    eprintln!(
        "  {:<26} {:>12} {:>12} {:>12}",
        "variant", "phc spread", "measured avg", "measured max"
    );
    for (label, load, prio) in [
        ("idle", 0.0, true),
        ("load 0.3 + priority", 0.3, true),
        ("load 0.6 + priority", 0.6, true),
        ("load 0.6 no priority", 0.6, false),
        ("load 0.9 + priority", 0.9, true),
    ] {
        let mut world = World::new(config(load, prio, 5));
        let end = world.end_time();
        world.run_until(end);
        let spread = world.phc_spread(end);
        let r = world.into_result();
        let stats = r.series.stats().expect("samples");
        eprintln!(
            "  {label:<26} {:>12} {:>9.0} ns {:>12}",
            format!("{spread}"),
            stats.mean,
            format!("{}", stats.max)
        );
    }
    eprintln!("  (synchronization holds at every load; the probe measurement degrades)");
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_congestion");
    group.sample_size(10);
    // Short runs for the timing loop: background traffic multiplies the
    // event count by ~50×, so full 60 s runs belong to the quality
    // report only.
    for load in [0.0f64, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("run_10s_load", format!("{load}")),
            &load,
            |b, &load| {
                b.iter(|| {
                    let mut cfg = config(load, true, 5);
                    cfg.duration = Nanos::from_secs(10);
                    World::new(cfg).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
