//! Overhead of structured execution tracing (`tsn-trace`).
//!
//! Benchmarks the same short quick-preset simulation with tracing
//! disabled, and enabled (`World::enable_trace`). The trace-off case is
//! the one that must be free: a disarmed tracer costs one `Option`
//! discriminant check per event, so `run_plain` here must match the
//! other benches' plain runs — CI pins the trace-off overhead at 0 %
//! by construction (the hot loop is identical machine code either way;
//! this bench exists to catch anyone accidentally adding work outside
//! the `is_some()` guard). `run_traced` measures the armed cost for the
//! curious; it is allowed to cost more.

use clocksync::{TestbedConfig, World};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsn_time::Nanos;

fn short_cfg(seed: u64) -> TestbedConfig {
    TestbedConfig {
        warmup: Nanos::from_secs(2),
        duration: Nanos::from_secs(4),
        ..TestbedConfig::quick(seed)
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.bench_function("run_plain", |b| {
        b.iter(|| {
            let world = World::new(black_box(short_cfg(7)));
            let result = world.run();
            assert!(result.trace.is_none());
            result
        })
    });
    group.bench_function("run_traced", |b| {
        b.iter(|| {
            let mut world = World::new(black_box(short_cfg(7)));
            world.enable_trace();
            let result = world.run();
            assert!(result.trace.as_ref().is_some_and(|t| t.sim_events > 0));
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
