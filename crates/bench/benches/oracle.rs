//! Overhead of the runtime invariant oracle (`tsn-oracle`).
//!
//! Benchmarks the same short quick-preset simulation with the oracle
//! disabled and enabled (`World::enable_oracle`). The oracle is meant
//! to be cheap enough to leave on in CI campaigns — the acceptance
//! target is < 15 % wall-clock overhead — and exactly zero-cost when
//! disabled (a `None` check per event).

use clocksync::{TestbedConfig, World};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsn_time::Nanos;

fn short_cfg(seed: u64) -> TestbedConfig {
    TestbedConfig {
        warmup: Nanos::from_secs(2),
        duration: Nanos::from_secs(4),
        ..TestbedConfig::quick(seed)
    }
}

fn bench_oracle_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.bench_function("run_plain", |b| {
        b.iter(|| {
            let world = World::new(black_box(short_cfg(7)));
            world.run()
        })
    });
    group.bench_function("run_checked", |b| {
        b.iter(|| {
            let mut world = World::new(black_box(short_cfg(7)));
            world.enable_oracle();
            let result = world.run();
            assert!(result.violations.is_empty());
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_overhead);
criterion_main!(benches);
