//! Ablation ABL3: precision versus the synchronization interval S.
//!
//! The drift offset Γ = 2·r_max·S scales the precision bound linearly
//! with S; shorter intervals tighten the bound (and the servo) at the
//! cost of more traffic. The paper fixes S = 125 ms.

use clocksync::{scenario, TestbedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_time::Nanos;

fn config(sync_ms: i64, seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(90);
    cfg.sync_interval = Nanos::from_millis(sync_ms);
    cfg.aggregation.sync_interval = Nanos::from_millis(sync_ms);
    // Staleness scales with the interval so slow configurations are not
    // penalized by the freshness filter instead of by their physics.
    cfg.aggregation.staleness = Nanos::from_millis(sync_ms * 4);
    cfg
}

fn quality_report() {
    eprintln!("\n== ABL3 quality: precision vs sync interval ==");
    for s in [62i64, 125, 250, 500] {
        let r = scenario::run(config(s, 13)).result;
        let stats = r.series.stats().expect("samples");
        eprintln!(
            "  S = {s:>3} ms: avg = {:>7.0} ns  max = {:>10}  Gamma = {}  Pi = {}",
            stats.mean,
            format!("{}", stats.max),
            r.bounds.drift_offset,
            r.bounds.pi
        );
    }
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_sync_interval");
    group.sample_size(10);
    for s in [62i64, 125, 250] {
        group.bench_with_input(BenchmarkId::new("run_90s", s), &s, |b, &s| {
            b.iter(|| scenario::run(config(s, 13)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
