//! Ablation ABL1: the aggregation function under a Byzantine grandmaster.
//!
//! Runs the testbed with one compromised GM (POT shifted −24 µs) and
//! compares FTA (f = 1), plain mean, and median. Besides the runtime
//! measurement, each variant's *quality* — fraction of precision samples
//! within the bound — is printed once: the FTA and median mask the
//! Byzantine GM, the mean does not (which is why the paper uses an FTA).

use clocksync::{scenario, TestbedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsn_faults::{AttackPlan, CveId, KernelAssignment, Strike, PAPER_POT_OFFSET};
use tsn_fta::AggregationMethod;
use tsn_time::{Nanos, SimTime};

fn config(method: AggregationMethod, seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(120);
    cfg.aggregation.method = method;
    cfg.kernels = KernelAssignment::identical(4);
    cfg.attack = AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(30),
        target_node: 3,
        cve: CveId::Cve2018_18955,
        pot_offset: PAPER_POT_OFFSET,
        strategy: None,
    }]);
    cfg
}

fn variants() -> Vec<(&'static str, AggregationMethod)> {
    vec![
        ("fta_f1", AggregationMethod::FaultTolerantAverage { f: 1 }),
        ("mean", AggregationMethod::Mean),
        ("median", AggregationMethod::Median),
    ]
}

fn quality_report() {
    eprintln!("\n== ABL1 quality: one Byzantine GM (-24 us), 2 min ==");
    for (name, method) in variants() {
        let r = scenario::run(config(method, 7)).result;
        let stats = r.series.stats().expect("samples");
        eprintln!(
            "  {name:<8} within bound: {:.4}   avg = {:>8.0} ns   max = {}",
            r.series.fraction_within(r.bounds.pi_plus_gamma()),
            stats.mean,
            stats.max
        );
    }
    eprintln!();
}

fn bench(c: &mut Criterion) {
    quality_report();
    let mut group = c.benchmark_group("ablation_aggregation");
    group.sample_size(10);
    for (name, method) in variants() {
        group.bench_with_input(BenchmarkId::new("run_2min", name), &method, |b, m| {
            b.iter(|| scenario::run(config(*m, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
