//! Simulator throughput gate: runs a fixed deterministic workload and
//! reports events/s, tracked as a perf trajectory in
//! `BENCH_baseline.json` at the repository root (ROADMAP item 1).
//!
//! The workload is the quick preset with the dynamic BMCA election
//! enabled and a grandmaster kill mid-run, so the measured path covers
//! the event queue, gPTP exchange, Announce/election machinery, and the
//! failover transient — the hot loop a perf regression would hit.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin perf              # print JSON
//! cargo run -p tsn-bench --release --bin perf -- \
//!     --check BENCH_baseline.json [--tol 0.6]              # CI gate
//! ```
//!
//! `--check` enforces two things against the baseline file:
//! * `events` must match **exactly** — the workload is deterministic,
//!   so a different event count means simulator behaviour changed; if
//!   that is deliberate, regenerate the baseline (run without flags and
//!   commit the output).
//! * `events_per_sec` must be at least `(1 - tol)` of the recorded
//!   rate. The default tolerance (0.6) is deliberately loose: shared CI
//!   runners are noisy, and the gate is meant to catch order-of-change
//!   regressions, not 5% jitter.
//!
//! Exit codes: 0 ok, 1 regression, 2 usage/IO error.

use clocksync::{TestbedConfig, World};
use std::time::Instant;
use tsn_time::{Nanos, SimTime};

const SCHEMA: u32 = 1;
const SEED: u64 = 7;
const REPS: usize = 3;
const DEFAULT_TOL: f64 = 0.6;

/// The fixed workload. Changing anything here changes `events` and
/// requires a baseline regeneration.
fn workload() -> TestbedConfig {
    let mut cfg = TestbedConfig::quick(SEED);
    cfg.warmup = Nanos::from_secs(5);
    cfg.duration = Nanos::from_secs(20);
    cfg.election = Some(clocksync::election::ElectionConfig {
        gm_failure_at: Some(Nanos::from_secs(8)),
        gm_failure_node: 0,
        ..Default::default()
    });
    cfg
}

/// Runs the workload once; returns (events processed, events/s).
fn run_once() -> (u64, f64) {
    let cfg = workload();
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;
    let start = Instant::now();
    let mut world = World::new(cfg);
    world.run_until(end);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let events = world.events_processed();
    (events, events as f64 / wall)
}

/// Best-of-N: the event count is identical across reps (determinism);
/// the rate takes the fastest rep to shed cold-cache noise.
fn measure() -> (u64, f64) {
    let mut events = 0;
    let mut best = 0.0f64;
    for rep in 0..REPS {
        let (n, rate) = run_once();
        if rep == 0 {
            events = n;
        } else {
            assert_eq!(n, events, "non-deterministic event count");
        }
        best = best.max(rate);
    }
    (events, best)
}

fn render(events: u64, rate: f64) -> String {
    format!(
        "{{\"schema\":{SCHEMA},\"workload\":\"quick-election-failover\",\"seed\":{SEED},\"events\":{events},\"events_per_sec\":{rate:.0}}}\n"
    )
}

/// Pulls a numeric field out of the flat baseline JSON without a
/// parser dependency: the file is machine-written by this binary.
fn field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(baseline_path: &str, tol: f64) -> i32 {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {baseline_path}: {e}");
            return 2;
        }
    };
    let (Some(base_events), Some(base_rate)) = (
        field(&baseline, "events"),
        field(&baseline, "events_per_sec"),
    ) else {
        eprintln!("error: {baseline_path} lacks events/events_per_sec");
        return 2;
    };
    let (events, rate) = measure();
    println!("{}", render(events, rate).trim_end());
    println!(
        "baseline: events {}  rate {:.0}/s  (tolerance {:.0}%)",
        base_events as u64,
        base_rate,
        tol * 100.0
    );
    let mut status = 0;
    if events != base_events as u64 {
        eprintln!(
            "FAIL: event count {events} != baseline {} — simulator behaviour \
             changed; if deliberate, regenerate BENCH_baseline.json",
            base_events as u64
        );
        status = 1;
    }
    let floor = base_rate * (1.0 - tol);
    if rate < floor {
        eprintln!("FAIL: {rate:.0} events/s below floor {floor:.0} (baseline {base_rate:.0})");
        status = 1;
    }
    if status == 0 {
        println!("ok: throughput within tolerance");
    }
    status
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.as_slice() {
        [] => {
            let (events, rate) = measure();
            print!("{}", render(events, rate));
            0
        }
        [flag, path] if flag == "--check" => check(path, DEFAULT_TOL),
        [flag, path, tflag, tval] if flag == "--check" && tflag == "--tol" => {
            match tval.parse::<f64>() {
                Ok(t) if (0.0..1.0).contains(&t) => check(path, t),
                _ => {
                    eprintln!("error: --tol needs a fraction in [0, 1)");
                    2
                }
            }
        }
        _ => {
            eprintln!("usage: perf [--check BENCH_baseline.json [--tol F]]");
            2
        }
    };
    std::process::exit(code);
}
