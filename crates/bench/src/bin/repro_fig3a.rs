//! Regenerates Fig. 3a: the 1 h cyber-resilience experiment with
//! identical (exploitable) Linux kernels on all virtual grandmasters.
//!
//! Paper result: the first exploit (GM c1_4 at 00:21:42 h) is masked by
//! the FTA; after the second (GM c1_1 at 00:31:52 h) the measured
//! precision violates the bound and the nodes lose synchronization.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_fig3a [--minutes 60] [--seed 7]
//! ```

use clocksync::scenario;
use tsn_bench::{print_summary, window_max, write_artifact, ReproArgs};
use tsn_metrics::{render_series, series_csv};
use tsn_time::Nanos;

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(60);
    println!("Fig. 3a — identical kernels, attack at 00:21:42 / 00:31:52\n");
    let outcome = scenario::cyber_identical_kernels(args.seed, duration);
    let r = &outcome.result;

    print_summary(r);
    let windows = r.series.aggregate(Nanos::from_secs(60));
    let plot = render_series(
        &windows,
        &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
        16,
        72,
    );
    println!("\n{plot}");

    let bound = r.bounds.pi_plus_gamma();
    let pre = window_max(r, 15, 21).expect("pre-attack samples");
    let masked = window_max(r, 23, 31).expect("post-strike-1 samples");
    let broken = window_max(r, 33, 39).unwrap_or(masked);
    println!("shape check (paper Fig. 3a):");
    println!(
        "  before attack:    max = {pre}  (within bound: {})",
        pre <= bound
    );
    println!(
        "  strike 1 masked:  max = {masked}  (within bound: {})",
        masked <= bound
    );
    println!(
        "  strike 2 breaks:  max = {broken}  (within bound: {})",
        broken <= bound
    );

    write_artifact(&args.out, "fig3a.csv", &series_csv(&windows));
    write_artifact(&args.out, "fig3a.txt", &plot);
}
