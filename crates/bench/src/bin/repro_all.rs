//! Runs every figure regenerator back to back with shortened defaults
//! (pass `--minutes 1440` for the full 24 h fault-injection figures).
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_all [--minutes N]
//! ```

use clocksync::scenario;
use tsn_bench::{print_summary, window_max, ReproArgs};
use tsn_time::Nanos;

fn main() {
    let args = ReproArgs::parse();
    let cyber = args.duration(60);
    let fault = args.duration(240); // 4 h default keeps repro_all quick

    println!("==== FIG3A (identical kernels) ====");
    let r = scenario::cyber_identical_kernels(args.seed, cyber).result;
    print_summary(&r);
    let bound = r.bounds.pi_plus_gamma();
    let masked = window_max(&r, 23, 31).map(|m| m <= bound);
    let broken = window_max(&r, 33, 39).map(|m| m > bound);
    println!("strike 1 masked: {masked:?}   strike 2 breaks bound: {broken:?}");

    println!("\n==== FIG3B (diverse kernels) ====");
    let r = scenario::cyber_diverse_kernels(args.seed, cyber).result;
    print_summary(&r);
    println!(
        "strikes ok/failed = {}/{}",
        r.counters.strikes_succeeded, r.counters.strikes_failed
    );

    println!(
        "\n==== FIG4A/4B/5 (fault injection, {:.1} h) ====",
        fault.as_secs_f64() / 3600.0
    );
    let r = scenario::fault_injection(args.seed + 4, fault).result;
    print_summary(&r);
    println!(
        "fail-silent VMs = {} (GM {})   takeovers = {}   tx timeouts = {}   deadline misses = {}",
        r.counters.vm_failures,
        r.counters.gm_failures,
        r.counters.takeovers,
        r.counters.tx_timestamp_timeouts,
        r.counters.deadline_misses
    );
    if let Some(m) = r.series.max() {
        println!("max precision {} at {}", m.value, m.at);
    }
    println!("\n(run repro_bounds and repro_stability for the in-text derivations");
    println!(" and the §III-C clock-stability analysis; for multi-seed statistics");
    println!(" of the same scenarios, run the campaign port:");
    println!("   cargo run -p tsn-campaign --release --bin campaign -- run --builtin repro-all)");
    let _ = Nanos::from_secs(0);
}
