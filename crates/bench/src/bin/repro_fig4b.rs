//! Regenerates Fig. 4b: the distribution of the measured precision over
//! the 24 h fault-injection experiment.
//!
//! Paper result: avg = 322 ns, std = 421 ns, min = 33 ns, max = 10 080 ns,
//! with the mass concentrated below 1 µs.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_fig4b [--minutes 1440]
//! ```

use clocksync::scenario;
use tsn_bench::{write_artifact, ReproArgs};
use tsn_metrics::{histogram_csv, render_histogram, Histogram};

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(24 * 60);
    println!(
        "Fig. 4b — precision distribution over {:.1} h\n",
        duration.as_secs_f64() / 3600.0
    );
    let outcome = scenario::fault_injection(args.seed + 4, duration);
    let r = &outcome.result;

    let mut hist = Histogram::new(50, 20); // 0..1000 ns, 50 ns bins (paper x-axis)
    for s in r.series.samples() {
        hist.record(s.value);
    }
    let stats = r.series.stats().expect("samples");
    println!(
        "measured: avg = {:.0} ns, std = {:.0} ns, min = {}, max = {}",
        stats.mean, stats.std, stats.min, stats.max
    );
    println!("paper:    avg = 322 ns, std = 421 ns, min = 33 ns, max = 10 080 ns\n");
    let rendering = render_histogram(&hist, 60);
    println!("{rendering}");

    write_artifact(&args.out, "fig4b.csv", &histogram_csv(&hist));
    write_artifact(&args.out, "fig4b.txt", &rendering);
}
