//! Regenerates Fig. 5: the 1 h window of the fault-injection experiment
//! around the maximum measured precision, annotated with clock-sync VM
//! failures (v), takeovers (*), transient ptp4l faults (x), reboots (^)
//! and GM rejoins (+).
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_fig5 [--minutes 1440]
//! ```

use clocksync::scenario;
use tsn_bench::{write_artifact, ReproArgs};
use tsn_metrics::{render_series, series_csv};
use tsn_time::{Nanos, SimTime};

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(24 * 60);
    let outcome = scenario::fault_injection(args.seed + 4, duration);
    let r = &outcome.result;

    let max = r.series.max().expect("samples");
    println!(
        "maximum measured precision: {} at runtime {}",
        max.value,
        SimTime::from_nanos((max.at - r.warmup).as_nanos())
    );
    // Fig. 5 centers a 1 h window on the maximum (the paper shows
    // 06:15–07:15 around its 06:45:49 maximum).
    let half = Nanos::from_secs(30 * 60);
    let from = if max.at - SimTime::ZERO >= half + r.warmup {
        max.at - half
    } else {
        SimTime::ZERO + r.warmup
    };
    let to = from + Nanos::from_secs(3600);
    let window = r.series.window(from, to);
    let windows = window.aggregate(Nanos::from_secs(60));
    let plot = render_series(
        &windows,
        &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
        16,
        72,
    );
    println!("\n{plot}");

    println!("events in the window:");
    let mut listing = String::new();
    for (t, e) in r.events.window(from, to) {
        let line = format!(
            "  {} [{}] {}",
            SimTime::from_nanos((t - r.warmup).as_nanos()),
            e.marker(),
            e
        );
        println!("{line}");
        listing.push_str(&line);
        listing.push('\n');
    }

    write_artifact(&args.out, "fig5.csv", &series_csv(&windows));
    write_artifact(&args.out, "fig5_events.txt", &listing);
}
