//! Clock-stability analysis of `CLOCK_SYNCTIME` (beyond the paper's
//! figures, in the spirit of its §III-C discussion): Allan deviation and
//! MTIE of the dependent clock's ground-truth time error, under the
//! feedback discipline of the paper's prototype and the feed-forward
//! alternative it proposes as future work.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_stability [--minutes 60]
//! ```

use clocksync::{scenario, TestbedConfig};
use tsn_bench::ReproArgs;
use tsn_hyp::SyncClockDiscipline;

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(60);
    println!(
        "stability of CLOCK_SYNCTIME over {:.0} min (fault-free)\n",
        duration.as_secs_f64() / 60.0
    );
    for (label, discipline) in [
        ("feedback (paper prototype)", SyncClockDiscipline::Feedback),
        (
            "feed-forward (paper future work)",
            SyncClockDiscipline::FeedForward,
        ),
    ] {
        let mut cfg = TestbedConfig::paper_default(args.seed);
        cfg.duration = duration;
        cfg.sync_clock_discipline = discipline;
        let r = scenario::run(cfg).result;
        println!("== {label} ==");
        println!("  discipline error (CLOCK_SYNCTIME vs PHC):");
        let de = &r.discipline_error;
        println!("    {:>8}  {:>12}", "tau", "ADEV");
        for (tau, adev) in de.adev_curve(6) {
            println!("    {tau:>7.0}s  {adev:>12.3e}");
        }
        println!("    {:>8}  {:>12}", "window", "MTIE");
        for m in [1usize, 10, 60] {
            if let Some(mtie) = de.mtie(m) {
                println!("    {m:>7}s  {mtie:>10.0}ns");
            }
        }
        // The absolute error additionally carries the ensemble's
        // common-mode wander (EXPERIMENTS.md, finding 1).
        if let Some(mtie) = r.ground_truth.mtie(600.min(r.ground_truth.x.len() - 1)) {
            println!("  absolute error MTIE(600 s) = {mtie:.0} ns (incl. common-mode wander)");
        }
        println!();
    }
    println!("The feedback loop amplifies clock-read noise into wander at short");
    println!("tau; the feed-forward mapping tracks the PHC directly — the paper's");
    println!("RADclock argument, quantified.");
}
