//! Regenerates Fig. 3b: the cyber-resilience experiment with diversified
//! Linux kernels — only virtual GM c1_4 runs the exploitable v4.19.1.
//!
//! Paper result: the first exploit lands but the FTA masks the single
//! Byzantine GM; the second exploit fails, so the measured precision
//! stays within the bound throughout.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_fig3b [--minutes 60] [--seed 7]
//! ```

use clocksync::scenario;
use tsn_bench::{print_summary, write_artifact, ReproArgs};
use tsn_metrics::{render_series, series_csv};
use tsn_time::Nanos;

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(60);
    println!("Fig. 3b — diverse kernels, same attacker\n");
    let outcome = scenario::cyber_diverse_kernels(args.seed, duration);
    let r = &outcome.result;

    print_summary(r);
    println!(
        "strikes: {} succeeded (c1_4), {} failed (c1_1)",
        r.counters.strikes_succeeded, r.counters.strikes_failed
    );
    let windows = r.series.aggregate(Nanos::from_secs(60));
    let plot = render_series(
        &windows,
        &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
        16,
        72,
    );
    println!("\n{plot}");
    println!(
        "shape check (paper Fig. 3b): all samples within bound: {}",
        r.series.fraction_within(r.bounds.pi_plus_gamma()) == 1.0
    );

    write_artifact(&args.out, "fig3b.csv", &series_csv(&windows));
    write_artifact(&args.out, "fig3b.txt", &plot);
}
