//! Regenerates Fig. 4a: the 24 h fault-injection experiment's measured
//! clock-synchronization precision (120 s windows, log scale).
//!
//! Paper result: average 322 ± 421 ns over 24 h, maximum 10.08 µs at
//! 06:45:49 h — always within Π + γ (Π = 11.42 µs, γ = 856 ns) despite
//! 94 fail-silent clock-sync VMs. Also reports the in-text fault counts
//! (TXT3): 2992 tx timestamp timeouts and 347 deadline misses.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_fig4a [--minutes 1440]
//! ```

use clocksync::scenario;
use tsn_bench::{print_summary, write_artifact, ReproArgs};
use tsn_metrics::{render_series, series_csv};
use tsn_time::Nanos;

fn main() {
    let args = ReproArgs::parse();
    let duration = args.duration(24 * 60);
    println!(
        "Fig. 4a — fault injection over {:.1} h\n",
        duration.as_secs_f64() / 3600.0
    );
    let outcome = scenario::fault_injection(args.seed + 4, duration);
    let r = &outcome.result;

    print_summary(r);
    println!("\nfault counts (paper: 94 fail-silent VMs / 48 GM; 2992 tx timeouts; 347 deadline misses):");
    println!(
        "  fail-silent VMs = {} (GM = {})   takeovers = {}",
        r.counters.vm_failures, r.counters.gm_failures, r.counters.takeovers
    );
    println!(
        "  tx timestamp timeouts = {}   deadline misses = {}",
        r.counters.tx_timestamp_timeouts, r.counters.deadline_misses
    );

    let windows = r.series.aggregate(Nanos::from_secs(120));
    let plot = render_series(
        &windows,
        &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
        16,
        96,
    );
    println!("\n{plot}");

    write_artifact(&args.out, "fig4a.csv", &series_csv(&windows));
    write_artifact(&args.out, "fig4a.txt", &plot);
}
