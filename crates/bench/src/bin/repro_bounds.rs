//! Regenerates the in-text bound derivations (TXT1/TXT2):
//!
//! * experiment 1 (cyber): d_min = 4120 ns, d_max = 9188 ns, E = 5068 ns,
//!   Γ = 1.25 µs, Π = 12.636 µs, γ = 1313 ns;
//! * experiment 2 (fault injection): Π = 11.42 µs, γ = 856 ns.
//!
//! The absolute values depend on the drawn link latencies (as they did
//! on the paper's cabling); the derivation chain E = d_max − d_min,
//! Γ = 2·r_max·S, Π = 2(E + Γ) is what is being reproduced.
//!
//! ```sh
//! cargo run -p tsn-bench --release --bin repro_bounds
//! ```

use clocksync::{scenario, TestbedConfig};
use tsn_bench::ReproArgs;
use tsn_time::Nanos;

fn row(label: &str, b: &tsn_metrics::BoundsReport) {
    println!(
        "{label:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        format!("{}", b.d_min),
        format!("{}", b.d_max),
        format!("{}", b.reading_error),
        format!("{}", b.drift_offset),
        format!("{}", b.pi),
        format!("{}", b.gamma)
    );
}

fn main() {
    let args = ReproArgs::parse();
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "experiment", "d_min", "d_max", "E", "Gamma", "Pi", "gamma"
    );
    // Experiment 1 topology (cyber experiment's seed).
    let mut cfg = TestbedConfig::paper_default(args.seed);
    cfg.duration = Nanos::from_secs(10);
    let r1 = scenario::run(cfg).result;
    row("exp 1 (cyber)", &r1.bounds);
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "  paper", "4120ns", "9188ns", "5068ns", "1250ns", "12.636us", "1313ns"
    );
    // Experiment 2 topology (fault-injection seed).
    let mut cfg = TestbedConfig::paper_default(args.seed + 4);
    cfg.duration = Nanos::from_secs(10);
    let r2 = scenario::run(cfg).result;
    row("exp 2 (fault inject)", &r2.bounds);
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "  paper", "-", "-", "-", "1250ns", "11.42us", "856ns"
    );
}
