//! Shared plumbing for the figure regenerators and benches.
//!
//! Each `repro_*` binary regenerates one of the paper's figures (or
//! in-text results): it runs the corresponding scenario, prints a
//! text rendering plus the quantitative comparison against the paper's
//! reported values, and writes CSV artifacts for external plotting.

use clocksync::RunResult;
use std::path::{Path, PathBuf};
use tsn_time::{Nanos, SimTime};

/// Command-line options shared by the regenerators.
#[derive(Debug, Clone)]
pub struct ReproArgs {
    /// Experiment seed.
    pub seed: u64,
    /// Duration override in minutes, if given.
    pub minutes: Option<u64>,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
}

/// Usage text shared by every regenerator binary.
pub const REPRO_USAGE: &str = "options:
  --seed N      experiment seed (default 7)
  --minutes N   duration override in minutes
  --out DIR     CSV artifact directory (default target/repro)
  --help        print this help";

impl ReproArgs {
    /// Parses `--seed N`, `--minutes N`, `--out DIR` (all optional)
    /// from the process arguments. Malformed or unknown arguments
    /// print the usage and exit with status 2; `--help` prints it and
    /// exits 0.
    pub fn parse() -> ReproArgs {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(ReproParse::Args(args)) => args,
            Ok(ReproParse::Help) => {
                println!("{REPRO_USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{REPRO_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The pure parser behind [`ReproArgs::parse`]. Rejects malformed
    /// values and unknown arguments instead of silently swallowing
    /// them (a mistyped `--seed` must not run the wrong experiment).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<ReproParse, String> {
        let mut parsed = ReproArgs {
            seed: 7,
            minutes: None,
            out: PathBuf::from("target/repro"),
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
            match a.as_str() {
                "--help" | "-h" => return Ok(ReproParse::Help),
                "--seed" => {
                    let v = value("--seed")?;
                    parsed.seed = v
                        .parse()
                        .map_err(|_| format!("malformed --seed value {v:?}"))?;
                }
                "--minutes" => {
                    let v = value("--minutes")?;
                    parsed.minutes = Some(
                        v.parse()
                            .map_err(|_| format!("malformed --minutes value {v:?}"))?,
                    );
                }
                "--out" => parsed.out = PathBuf::from(value("--out")?),
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(ReproParse::Args(parsed))
    }

    /// The experiment duration: the override or `default_minutes`.
    pub fn duration(&self, default_minutes: u64) -> Nanos {
        Nanos::from_secs((self.minutes.unwrap_or(default_minutes) * 60) as i64)
    }
}

/// Outcome of [`ReproArgs::try_parse`].
#[derive(Debug, Clone)]
pub enum ReproParse {
    /// Parsed options.
    Args(ReproArgs),
    /// `--help` was requested.
    Help,
}

/// Writes a text artifact, creating the directory as needed.
pub fn write_artifact(dir: &Path, name: &str, content: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// Prints the standard bound/measurement summary block.
pub fn print_summary(r: &RunResult) {
    println!(
        "bounds: d_min = {}  d_max = {}  E = {}  Gamma = {}  Pi = {}  gamma = {}",
        r.bounds.d_min,
        r.bounds.d_max,
        r.bounds.reading_error,
        r.bounds.drift_offset,
        r.bounds.pi,
        r.bounds.gamma
    );
    if let Some(s) = r.series.stats() {
        println!(
            "measured Pi*: avg = {:.0} ns  std = {:.0} ns  min = {}  max = {}  samples = {}",
            s.mean, s.std, s.min, s.max, s.count
        );
    }
    println!(
        "fraction within Pi + gamma: {:.5}",
        r.series.fraction_within(r.bounds.pi_plus_gamma())
    );
}

/// Max precision within `[from_min, to_min)` minutes of the measured
/// axis, if any samples exist there.
pub fn window_max(r: &RunResult, from_min: u64, to_min: u64) -> Option<Nanos> {
    let from = SimTime::ZERO + r.warmup + Nanos::from_secs((from_min * 60) as i64);
    let to = SimTime::ZERO + r.warmup + Nanos::from_secs((to_min * 60) as i64);
    r.series.window(from, to).stats().map(|s| s.max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ReproParse, String> {
        ReproArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        let ReproParse::Args(a) = parse(&[]).unwrap() else {
            panic!("expected args");
        };
        assert_eq!(a.seed, 7);
        assert_eq!(a.minutes, None);
        assert_eq!(a.out, PathBuf::from("target/repro"));
    }

    #[test]
    fn parses_all_flags() {
        let ReproParse::Args(a) =
            parse(&["--seed", "99", "--minutes", "3", "--out", "/tmp/x"]).unwrap()
        else {
            panic!("expected args");
        };
        assert_eq!(a.seed, 99);
        assert_eq!(a.minutes, Some(3));
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.duration(60), Nanos::from_secs(180));
    }

    #[test]
    fn malformed_values_error_instead_of_silently_defaulting() {
        assert!(parse(&["--seed", "banana"]).unwrap_err().contains("--seed"));
        assert!(parse(&["--minutes", "-3"])
            .unwrap_err()
            .contains("--minutes"));
        assert!(parse(&["--seed"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn help_is_recognized() {
        assert!(matches!(parse(&["--help"]).unwrap(), ReproParse::Help));
        assert!(matches!(parse(&["-h"]).unwrap(), ReproParse::Help));
    }
}
