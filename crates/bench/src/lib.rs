//! Shared plumbing for the figure regenerators and benches.
//!
//! Each `repro_*` binary regenerates one of the paper's figures (or
//! in-text results): it runs the corresponding scenario, prints a
//! text rendering plus the quantitative comparison against the paper's
//! reported values, and writes CSV artifacts for external plotting.

use clocksync::RunResult;
use std::path::{Path, PathBuf};
use tsn_time::{Nanos, SimTime};

/// Command-line options shared by the regenerators.
#[derive(Debug, Clone)]
pub struct ReproArgs {
    /// Experiment seed.
    pub seed: u64,
    /// Duration override in minutes, if given.
    pub minutes: Option<u64>,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
}

impl ReproArgs {
    /// Parses `--seed N`, `--minutes N`, `--out DIR` (all optional).
    pub fn parse() -> ReproArgs {
        let mut args = ReproArgs {
            seed: 7,
            minutes: None,
            out: PathBuf::from("target/repro"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
                "--minutes" => args.minutes = it.next().and_then(|v| v.parse().ok()),
                "--out" => {
                    if let Some(v) = it.next() {
                        args.out = PathBuf::from(v);
                    }
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        args
    }

    /// The experiment duration: the override or `default_minutes`.
    pub fn duration(&self, default_minutes: u64) -> Nanos {
        Nanos::from_secs((self.minutes.unwrap_or(default_minutes) * 60) as i64)
    }
}

/// Writes a text artifact, creating the directory as needed.
pub fn write_artifact(dir: &Path, name: &str, content: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// Prints the standard bound/measurement summary block.
pub fn print_summary(r: &RunResult) {
    println!(
        "bounds: d_min = {}  d_max = {}  E = {}  Gamma = {}  Pi = {}  gamma = {}",
        r.bounds.d_min,
        r.bounds.d_max,
        r.bounds.reading_error,
        r.bounds.drift_offset,
        r.bounds.pi,
        r.bounds.gamma
    );
    if let Some(s) = r.series.stats() {
        println!(
            "measured Pi*: avg = {:.0} ns  std = {:.0} ns  min = {}  max = {}  samples = {}",
            s.mean, s.std, s.min, s.max, s.count
        );
    }
    println!(
        "fraction within Pi + gamma: {:.5}",
        r.series.fraction_within(r.bounds.pi_plus_gamma())
    );
}

/// Max precision within `[from_min, to_min)` minutes of the measured
/// axis, if any samples exist there.
pub fn window_max(r: &RunResult, from_min: u64, to_min: u64) -> Option<Nanos> {
    let from = SimTime::ZERO + r.warmup + Nanos::from_secs((from_min * 60) as i64);
    let to = SimTime::ZERO + r.warmup + Nanos::from_secs((to_min * 60) as i64);
    r.series.window(from, to).stats().map(|s| s.max)
}
