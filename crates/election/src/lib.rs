//! # tsn-election
//!
//! Dynamic BMCA grandmaster election for the `clocksync` testbed.
//!
//! The paper runs with *external port configuration*: four statically
//! assigned grandmasters, no BMCA. This crate turns the offline
//! [`Bmca`] (IEEE 802.1AS clause 10.3) into a live, event-loop-driven
//! election subsystem. Per node it owns one [`NodeElection`] covering
//! every gPTP domain: an Announce transmission schedule (acting masters
//! emit at `announce_interval` with their identity in the path trace),
//! receipt-timeout expiry, and a decision step that drives
//! acting-master transitions and GM handoff in the host simulation.
//!
//! The election is initialized to the paper's static assignment (node
//! `d` is the acting master of domain `d`) and self-promotion is gated
//! behind a startup grace of one announce receipt timeout, so a run
//! with election enabled starts from exactly the static topology and
//! only diverges once Announce silence or a better claimant is actually
//! observed. All state implements [`SnapState`] so checkpoint/fork
//! campaigns stay byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use tsn_gptp::msg::{AnnounceBody, Header, Message, MessageType};
use tsn_gptp::{Bmca, ClockIdentity, ClockQuality, PortIdentity, SystemIdentity};
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};
use tsn_time::{ClockTime, Nanos};

/// Configuration of the dynamic election mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElectionConfig {
    /// Announce transmission interval of acting masters
    /// (802.1AS default: 1 s; the testbed defaults to 250 ms so
    /// failover fits in short runs).
    pub announce_interval: Nanos,
    /// Announce receipt timeout, in intervals (802.1AS default: 3).
    pub timeout_intervals: u32,
    /// Scheduled grandmaster kill switch: measured-axis time (after
    /// warm-up) at which [`ElectionConfig::gm_failure_node`]'s GM VM is
    /// permanently shut down, forcing a re-election.
    pub gm_failure_at: Option<Nanos>,
    /// Node whose GM VM the kill switch targets.
    pub gm_failure_node: usize,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            announce_interval: Nanos::from_millis(250),
            timeout_intervals: 3,
            gm_failure_at: None,
            gm_failure_node: 0,
        }
    }
}

impl ElectionConfig {
    /// The announce receipt timeout (silence after which a master's
    /// claim expires).
    pub fn receipt_timeout(&self) -> Nanos {
        Nanos::from_nanos(self.announce_interval.as_nanos() * i64::from(self.timeout_intervals))
    }

    /// The bound within which a domain must re-elect and resume after
    /// its acting master fails: detection (receipt timeout) plus a few
    /// announce rounds of settling. The convergence oracle enforces it.
    pub fn convergence_bound(&self) -> Nanos {
        self.receipt_timeout() + Nanos::from_nanos(self.announce_interval.as_nanos() * 4)
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self, nodes: usize) {
        assert!(
            self.announce_interval > Nanos::ZERO,
            "announce_interval must be positive"
        );
        assert!(
            self.timeout_intervals >= 2,
            "timeout_intervals must be at least 2 (single-loss tolerance)"
        );
        assert!(
            self.gm_failure_node < nodes,
            "gm_failure_node {} out of range for {} nodes",
            self.gm_failure_node,
            nodes
        );
    }
}

/// The deterministic `priority1` of `node` for `domain` among `nodes`
/// systems: the home node (`node == domain`) advertises the best value
/// (100) and each subsequent node in cyclic order is 10 worse, so the
/// configured second-best master of domain `d` is node `(d + 1) % N`.
pub fn priority_for(node: usize, domain: usize, nodes: usize) -> u8 {
    debug_assert!(nodes > 0 && node < nodes && domain < nodes);
    let rank = (node + nodes - domain) % nodes;
    100 + 10 * (rank.min(15) as u8)
}

/// One observable election transition, for tracing and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionEvent {
    /// This node became the acting master of `domain`.
    Promoted {
        /// Affected domain.
        domain: u8,
    },
    /// This node stopped acting as master of `domain`.
    Demoted {
        /// Affected domain.
        domain: u8,
    },
    /// This node's view of the elected GM of `domain` changed.
    Elected {
        /// Affected domain.
        domain: u8,
        /// Newly elected node.
        node: usize,
        /// Previously elected node.
        prev: usize,
    },
}

/// Per-domain election state of one node.
struct DomainElection {
    domain: u8,
    bmca: Bmca,
    /// `true` while this node is the acting master of the domain.
    acting: bool,
    /// Node currently believed elected (initialized to the static
    /// assignment: domain `d` → node `d`).
    elected: usize,
    /// Rogue-master forged `priority1`, if this domain was captured.
    forged: Option<u8>,
    /// Announce sequence counter.
    announce_seq: u16,
}

impl SnapState for DomainElection {
    fn save_state(&self, w: &mut Writer) {
        self.bmca.save_state(w);
        self.acting.put(w);
        self.elected.put(w);
        self.forged.put(w);
        self.announce_seq.put(w);
    }
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.bmca.load_state(r)?;
        self.acting = Snap::get(r)?;
        self.elected = Snap::get(r)?;
        self.forged = Snap::get(r)?;
        self.announce_seq = Snap::get(r)?;
        Ok(())
    }
}

/// The complete election state of one node: a BMCA instance per domain,
/// announce scheduling, and acting-master bookkeeping.
pub struct NodeElection {
    node: usize,
    /// Slot-0 (GM VM) clock identity of every node, indexed by node.
    identities: Vec<ClockIdentity>,
    announce_interval: Nanos,
    receipt_timeout: Nanos,
    domains: Vec<DomainElection>,
    /// Local clock time of the first decision step; self-promotion is
    /// suppressed for one receipt timeout after it so the static prior
    /// holds until real Announce silence is observable.
    armed_at: Option<ClockTime>,
}

impl NodeElection {
    /// Builds the election state of `node`. `identities[n]` must be the
    /// clock identity node `n`'s GM VM announces with.
    pub fn new(node: usize, identities: Vec<ClockIdentity>, cfg: &ElectionConfig) -> Self {
        let n = identities.len();
        assert!(node < n, "node index out of range");
        let domains = (0..n)
            .map(|d| {
                let own = SystemIdentity {
                    priority1: priority_for(node, d, n),
                    quality: ClockQuality::default(),
                    priority2: 248,
                    identity: identities[node],
                };
                DomainElection {
                    domain: d as u8,
                    // Single logical port 1: the VM NIC. The switch mesh
                    // floods Announce, so one port sees every claimant.
                    bmca: Bmca::new(own, vec![1], cfg.receipt_timeout()),
                    // Static prior: node d acts for domain d.
                    acting: node == d,
                    elected: d,
                    forged: None,
                    announce_seq: 0,
                }
            })
            .collect();
        NodeElection {
            node,
            identities,
            announce_interval: cfg.announce_interval,
            receipt_timeout: cfg.receipt_timeout(),
            domains,
            armed_at: None,
        }
    }

    /// The announce interval this node schedules its election tick at.
    pub fn announce_interval(&self) -> Nanos {
        self.announce_interval
    }

    /// Feeds a received Announce for `domain`. `now` is the local clock
    /// used for receipt-timeout bookkeeping.
    pub fn on_announce(&mut self, domain: u8, msg: &Message, now: ClockTime) {
        if let Some(d) = self.domains.get_mut(domain as usize) {
            d.bmca.consider_announce(1, msg, now);
        }
    }

    /// One election round at local time `now`: expire stale claims, run
    /// the BMCA decision per domain, and apply acting/elected
    /// transitions. Returns the transitions in domain order.
    pub fn step(&mut self, now: ClockTime) -> Vec<ElectionEvent> {
        let grace_over = match self.armed_at {
            Some(t0) => now - t0 >= self.receipt_timeout,
            None => {
                self.armed_at = Some(now);
                false
            }
        };
        let mut events = Vec::new();
        for d in &mut self.domains {
            if grace_over {
                d.bmca.expire(now);
            }
            let decision = d.bmca.decide();
            // Until the grace elapses a decision in our own favour is
            // indistinguishable from "no Announce heard yet": hold the
            // static prior instead of promoting (a genuinely better
            // claimant still demotes us immediately).
            if decision.is_grandmaster && !grace_over && !d.acting {
                continue;
            }
            let winner = if decision.is_grandmaster {
                self.node
            } else {
                self.identities
                    .iter()
                    .position(|id| *id == decision.grandmaster.identity)
                    .unwrap_or(d.elected)
            };
            if decision.is_grandmaster != d.acting {
                d.acting = decision.is_grandmaster;
                events.push(if d.acting {
                    ElectionEvent::Promoted { domain: d.domain }
                } else {
                    ElectionEvent::Demoted { domain: d.domain }
                });
            }
            if winner != d.elected {
                let prev = d.elected;
                d.elected = winner;
                events.push(ElectionEvent::Elected {
                    domain: d.domain,
                    node: winner,
                    prev,
                });
            }
        }
        events
    }

    /// `true` while this node is the acting master of `domain`.
    pub fn acting(&self, domain: u8) -> bool {
        self.domains
            .get(domain as usize)
            .map(|d| d.acting)
            .unwrap_or(false)
    }

    /// Domains this node is currently the acting master of.
    pub fn acting_domains(&self) -> Vec<u8> {
        self.domains
            .iter()
            .filter(|d| d.acting)
            .map(|d| d.domain)
            .collect()
    }

    /// The node this node currently believes is the elected GM of
    /// `domain`.
    pub fn elected_node(&self, domain: u8) -> usize {
        self.domains
            .get(domain as usize)
            .map(|d| d.elected)
            .unwrap_or(domain as usize)
    }

    /// Rogue-master capture: this node starts advertising the forged
    /// `priority1` for `domain` and acts as its master unconditionally.
    pub fn capture(&mut self, domain: u8, forged_priority1: u8) {
        if let Some(d) = self.domains.get_mut(domain as usize) {
            d.forged = Some(forged_priority1);
            d.bmca.set_priority1(forged_priority1);
            d.acting = true;
            d.elected = self.node;
        }
    }

    /// `true` if this node captured `domain` as a rogue master.
    pub fn is_captured(&self, domain: u8) -> bool {
        self.domains
            .get(domain as usize)
            .map(|d| d.forged.is_some())
            .unwrap_or(false)
    }

    /// Builds the next Announce this node originates for `domain`
    /// (acting masters only; the caller schedules transmission).
    pub fn make_announce(&mut self, domain: u8) -> Message {
        let identity = self.identities[self.node];
        let n = self.identities.len();
        let d = &mut self.domains[domain as usize];
        let seq = d.announce_seq;
        d.announce_seq = d.announce_seq.wrapping_add(1);
        let priority1 = d
            .forged
            .unwrap_or_else(|| priority_for(self.node, domain as usize, n));
        Message::Announce {
            header: Header::new(
                MessageType::Announce,
                domain,
                PortIdentity::new(identity, 1),
                seq,
                log2_interval(self.announce_interval),
            ),
            path_trace: vec![identity],
            body: AnnounceBody {
                current_utc_offset: 37,
                priority1,
                quality: ClockQuality::default(),
                priority2: 248,
                gm_identity: identity,
                steps_removed: 0,
                time_source: 0xA0,
            },
        }
    }
}

impl SnapState for NodeElection {
    fn save_state(&self, w: &mut Writer) {
        self.armed_at.put(w);
        for d in &self.domains {
            d.save_state(w);
        }
    }
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.armed_at = Snap::get(r)?;
        for d in &mut self.domains {
            d.load_state(r)?;
        }
        Ok(())
    }
}

fn log2_interval(interval: Nanos) -> i8 {
    interval.as_secs_f64().log2().round() as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identities(n: usize) -> Vec<ClockIdentity> {
        (0..n).map(|i| ClockIdentity::for_index(i as u32)).collect()
    }

    fn cfg() -> ElectionConfig {
        ElectionConfig::default()
    }

    fn ms(v: i64) -> ClockTime {
        ClockTime::from_nanos(v * 1_000_000)
    }

    /// Drives `rx`'s election with announces from `from` for `domain`
    /// at time `now`.
    fn hear(rx: &mut NodeElection, from: &mut NodeElection, domain: u8, now: ClockTime) {
        let msg = from.make_announce(domain);
        rx.on_announce(domain, &msg, now);
    }

    #[test]
    fn priorities_make_home_best_and_successor_second() {
        let n = 4;
        for d in 0..n {
            let mut ranked: Vec<(u8, usize)> = (0..n)
                .map(|node| (priority_for(node, d, n), node))
                .collect();
            ranked.sort();
            assert_eq!(ranked[0], (100, d), "home node is best for its domain");
            assert_eq!(
                ranked[1],
                (110, (d + 1) % n),
                "cyclic successor is second-best"
            );
        }
    }

    #[test]
    fn static_prior_holds_without_traffic_during_grace() {
        let mut e = NodeElection::new(1, identities(4), &cfg());
        assert!(e.acting(1));
        assert!(!e.acting(0));
        // First step arms the grace; no promotion to foreign domains.
        let ev = e.step(ms(0));
        assert!(ev.is_empty());
        let ev = e.step(ms(250));
        assert!(ev.is_empty());
        assert_eq!(e.acting_domains(), vec![1]);
    }

    #[test]
    fn silence_past_grace_promotes_and_better_claimant_demotes() {
        let ids = identities(4);
        let mut e1 = NodeElection::new(1, ids.clone(), &cfg());
        // Domain 0's home GM is silent: after the grace e1 (second-best
        // for domain 0) promotes itself.
        let mut promoted = false;
        for k in 0..8 {
            let ev = e1.step(ms(k * 250));
            promoted |= ev.contains(&ElectionEvent::Promoted { domain: 0 });
        }
        assert!(promoted, "second-best promotes after announce timeout");
        assert!(e1.acting(0));
        assert_eq!(e1.elected_node(0), 1);
        // The home GM comes back: its better vector demotes e1.
        let mut e0 = NodeElection::new(0, ids, &cfg());
        let now = ms(8 * 250);
        hear(&mut e1, &mut e0, 0, now);
        let ev = e1.step(now);
        assert!(ev.contains(&ElectionEvent::Demoted { domain: 0 }));
        assert!(ev.contains(&ElectionEvent::Elected {
            domain: 0,
            node: 0,
            prev: 1
        }));
    }

    #[test]
    fn steady_announces_keep_the_home_master_elected() {
        let ids = identities(2);
        let mut e0 = NodeElection::new(0, ids.clone(), &cfg());
        let mut e1 = NodeElection::new(1, ids, &cfg());
        for k in 0..12 {
            let now = ms(k * 250);
            hear(&mut e1, &mut e0, 0, now);
            hear(&mut e0, &mut e1, 1, now);
            assert!(e0.step(now).is_empty(), "round {k} perturbed node 0");
            assert!(e1.step(now).is_empty(), "round {k} perturbed node 1");
        }
        assert!(e0.acting(0) && !e0.acting(1));
        assert!(e1.acting(1) && !e1.acting(0));
    }

    #[test]
    fn rogue_capture_forges_best_priority_and_wins() {
        let ids = identities(4);
        let mut rogue = NodeElection::new(3, ids.clone(), &cfg());
        rogue.capture(2, 0);
        assert!(rogue.acting(2));
        assert!(rogue.is_captured(2));
        let msg = rogue.make_announce(2);
        // A victim that currently follows the legitimate home master
        // switches to the rogue: priority1 0 beats 100.
        let mut victim = NodeElection::new(2, ids, &cfg());
        victim.on_announce(2, &msg, ms(0));
        let ev = victim.step(ms(0));
        assert!(ev.contains(&ElectionEvent::Demoted { domain: 2 }));
        assert_eq!(victim.elected_node(2), 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_election_state() {
        let ids = identities(4);
        let mut e = NodeElection::new(1, ids.clone(), &cfg());
        for k in 0..8 {
            let _ = e.step(ms(k * 250));
        }
        e.capture(3, 0);
        let mut w = Writer::new();
        e.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = NodeElection::new(1, ids, &cfg());
        let mut r = Reader::new(&bytes);
        restored.load_state(&mut r).expect("loads");
        r.finish().expect("consumed");
        let mut w2 = Writer::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "state re-encodes identically");
        assert_eq!(restored.acting_domains(), e.acting_domains());
        assert_eq!(restored.elected_node(0), e.elected_node(0));
    }

    #[test]
    #[should_panic(expected = "gm_failure_node")]
    fn validate_rejects_out_of_range_failure_node() {
        let cfg = ElectionConfig {
            gm_failure_node: 9,
            ..ElectionConfig::default()
        };
        cfg.validate(4);
    }
}
