//! # tsn-fabric
//!
//! Deterministic multi-hop TSN switch fabric between the ECDs of the
//! *IEEE 802.1AS Multi-Domain Aggregation for Virtualized Distributed
//! Real-Time Systems* (DSN-S 2023) testbed.
//!
//! The paper's prototype places the end systems one integrated switch
//! apart, which idealizes exactly what erodes sub-µs precision in
//! deployment: queuing delay, path asymmetry, and network depth. This
//! crate models the missing fabric the way the OMNeT++ PTP simulators
//! (arXiv:1609.06771, arXiv:1509.03169) do, while staying inside the
//! repository's determinism discipline:
//!
//! * **Topology generator** — [`FabricTopology`] expands every
//!   inter-switch mesh link into a chain of `hops ×` edge-distance
//!   store-and-forward switches (line, ring, or balanced-tree distance
//!   metric), each hop with a statically drawn propagation delay, an
//!   optional directional asymmetry, and a drawn residence latency.
//! * **802.1Qbv gates** — every fabric egress port runs a two-class
//!   gate schedule: the protected window (gPTP and other PCP ≥ 6
//!   traffic) opens at the start of each gate cycle, best-effort
//!   cross-traffic owns the rest. A protected frame arriving outside
//!   its window waits deterministically for the next cycle start; with
//!   no guard band a just-started best-effort MTU frame can still block
//!   the head of line (Bernoulli(load) × U[0, serialization)).
//!   Cross-traffic is never materialized as events: the generator is an
//!   analytic Poisson-field approximation driven by a dedicated control
//!   RNG stream, so it perturbs no event-queue tie-breaks and
//!   snapshot-fork stays byte-identical.
//! * **Transparent clocks** — in `transparent_clock` mode each hop
//!   accumulates its measured residence time (queuing + gate wait +
//!   serialization, with a small per-hop measurement error) for
//!   insertion into the Follow_Up correction field; peer-delay frames
//!   are modeled as TC-corrected (their effective delay collapses to
//!   propagation), so `meanLinkDelay` converges to the propagation mean
//!   and only the TC error and path asymmetry reach the servo. In
//!   end-to-end mode the raw queuing error reaches the servo
//!   uncompensated.
//!
//! Measurement probes are out of band: the paper's methodology pins
//! probe paths with static FDB entries and calibrates their static
//! delay, so the measurement plane bypasses the fabric model and the
//! measured precision reflects clock state, not probe transport.
//!
//! All mutable state (the cross-traffic RNG, per-port busy horizons,
//! pending transparent-clock corrections) implements [`SnapState`]; the
//! static tables are redrawn from configuration on restore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};
use tsn_time::{Nanos, SimTime};

pub mod fleet;
pub use fleet::{FleetShape, FleetSwitch, FleetTopology};

/// Shape of the switch fabric inserted between edge switches.
///
/// The variant fixes the *distance metric* between edge switches `a`
/// and `b`; the actual chain length is `hops × distance(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabricTopology {
    /// Switches on a line; distance is `|a − b|`.
    Line,
    /// Switches on a ring; distance is `min(|a − b|, n − |a − b|)`.
    Ring,
    /// Switches as leaves/nodes of a balanced binary tree (heap
    /// order); distance is the tree path length.
    Tree,
}

impl FabricTopology {
    /// Hop-chain distance between edge switches `a` and `b` of `n`.
    pub fn edge_distance(self, n: usize, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let d = a.abs_diff(b);
        match self {
            FabricTopology::Line => d as u32,
            FabricTopology::Ring => d.min(n - d) as u32,
            FabricTopology::Tree => {
                // 1-based heap indices; climb to the common ancestor.
                let (mut x, mut y) = (a + 1, b + 1);
                let mut steps = 0u32;
                while x != y {
                    if x > y {
                        x /= 2;
                    } else {
                        y /= 2;
                    }
                    steps += 1;
                }
                steps
            }
        }
    }
}

/// Configuration of the multi-hop fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Distance metric between edge switches.
    pub topology: FabricTopology,
    /// Depth knob: fabric switches per unit of edge distance (≥ 1).
    pub hops: u32,
    /// Static per-hop propagation delay draw range (lower bound).
    pub link_base_min: Nanos,
    /// Static per-hop propagation delay draw range (upper bound).
    pub link_base_max: Nanos,
    /// Extra static delay added to every hop in the `a → b` direction
    /// of each pair (`a < b`); peer-delay halves it into systematic
    /// offset error that neither mode can compensate.
    pub asymmetry_ns: Nanos,
    /// Static per-hop store-and-forward residence draw range (lower).
    pub residence_min: Nanos,
    /// Static per-hop store-and-forward residence draw range (upper).
    pub residence_max: Nanos,
    /// 802.1Qbv gate cycle time.
    pub gate_cycle: Nanos,
    /// Length of the protected (PCP ≥ 6) window at each cycle start.
    pub protected_window: Nanos,
    /// Best-effort cross-traffic load per hop (0–0.95): the
    /// probability that a cross frame blocks the head of line when the
    /// protected gate opens (no guard band).
    pub cross_traffic_load: f64,
    /// Cross-traffic frame size in bytes (bounds the blocking time).
    pub cross_frame_bytes: usize,
    /// Fabric line rate in bits per second.
    pub line_rate_bps: u64,
    /// `true`: per-hop residence time is accumulated into the gPTP
    /// correction field (IEEE 1588 transparent clocks); `false`:
    /// end-to-end mode, queuing reaches the servo raw.
    pub transparent_clock: bool,
    /// Per-hop transparent-clock residence measurement error (uniform
    /// `±tc_error_ns`).
    pub tc_error_ns: i64,
    /// A frame queued longer than this at a single hop is dropped
    /// (egress queue overflow stand-in).
    pub drop_horizon: Nanos,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            topology: FabricTopology::Line,
            hops: 2,
            link_base_min: Nanos::from_nanos(500),
            link_base_max: Nanos::from_nanos(900),
            asymmetry_ns: Nanos::ZERO,
            residence_min: Nanos::from_nanos(500),
            residence_max: Nanos::from_nanos(800),
            gate_cycle: Nanos::from_micros(12),
            protected_window: Nanos::from_micros(8),
            cross_traffic_load: 0.0,
            cross_frame_bytes: 1500,
            line_rate_bps: 1_000_000_000,
            transparent_clock: false,
            tc_error_ns: 8,
            drop_horizon: Nanos::from_millis(1),
        }
    }
}

impl FabricConfig {
    /// A line fabric of the given depth with defaults for the rest.
    pub fn line(hops: u32) -> Self {
        FabricConfig {
            hops,
            ..FabricConfig::default()
        }
    }

    /// Serialization time of a frame of `bytes` on this fabric's line
    /// rate (padding, FCS, and preamble included), in nanoseconds.
    pub fn serialization_ns(&self, bytes: usize) -> i64 {
        let on_wire = (bytes.max(60) + 4 + 8) as u64;
        ((on_wire * 8 * 1_000_000_000) / self.line_rate_bps) as i64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings; called by the testbed builder.
    pub fn validate(&self) {
        assert!(
            (1..=64).contains(&self.hops),
            "fabric hops must be in 1..=64"
        );
        assert!(
            self.link_base_min <= self.link_base_max,
            "fabric link range inverted"
        );
        assert!(
            self.link_base_min > Nanos::ZERO,
            "fabric link delay must be positive"
        );
        assert!(
            self.residence_min <= self.residence_max,
            "fabric residence range inverted"
        );
        assert!(
            self.residence_min > Nanos::ZERO,
            "fabric residence must be positive"
        );
        assert!(
            !self.asymmetry_ns.is_negative(),
            "fabric asymmetry must be non-negative"
        );
        assert!(
            self.protected_window > Nanos::ZERO && self.protected_window < self.gate_cycle,
            "protected window must be positive and shorter than the gate cycle"
        );
        assert!(
            (0.0..=0.95).contains(&self.cross_traffic_load),
            "cross-traffic load must be in 0..=0.95"
        );
        assert!(
            (60..=9000).contains(&self.cross_frame_bytes),
            "cross frame size must be in 60..=9000"
        );
        assert!(self.line_rate_bps > 0, "line rate must be positive");
        assert!(self.tc_error_ns >= 0, "tc error must be non-negative");
        assert!(
            self.drop_horizon > Nanos::ZERO,
            "drop horizon must be positive"
        );
    }
}

/// How a frame traverses the fabric (decided by the caller from the
/// gPTP message type and the fabric mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Sync: full protected-class traversal; in transparent-clock mode
    /// the per-hop residence is measured (with error) for later
    /// insertion into the Follow_Up correction field.
    Sync,
    /// Peer-delay event frames: full traversal in end-to-end mode; in
    /// transparent-clock mode the TC correction is folded into the
    /// effective delay, which collapses to propagation ± measurement
    /// error.
    Pdelay,
    /// Other protected PTP frames (Follow_Up, Announce): full
    /// traversal, no residence bookkeeping.
    General,
}

/// Result of one fabric traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Extra one-way delay the fabric adds to the frame.
    pub delay: Nanos,
    /// Accumulated per-hop residence time (queuing + gate wait +
    /// serialization). For a [`FrameClass::Sync`] in transparent-clock
    /// mode this is the measured value (per-hop error included) that
    /// the TCs would write into the correction field; zero for
    /// TC-calibrated peer-delay frames.
    pub residence_ns: i64,
    /// `true` if the frame overflowed a hop's queue and was dropped.
    pub dropped: bool,
}

/// One fabric hop's static draw: symmetric propagation base (the
/// configured asymmetry is added to the `a → b` direction on top) and
/// store-and-forward residence.
#[derive(Debug, Clone, Copy)]
struct Hop {
    base_ns: i64,
    res_ns: i64,
}

/// Cap on outstanding transparent-clock corrections (Follow_Ups lost to
/// link faults leak their entry; the oldest key is evicted past this).
const PENDING_TC_CAP: usize = 1024;

/// The deterministic multi-hop fabric between edge switches.
///
/// Static structure (hop chains, drawn delays) is rebuilt from
/// configuration; only the cross-traffic RNG, the per-port busy
/// horizons, and pending transparent-clock corrections evolve during a
/// run (and are covered by [`SnapState`]).
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: FabricConfig,
    switches: usize,
    /// Hop chains per unordered pair (a < b), lexicographic order.
    chains: Vec<Vec<Hop>>,
    /// Cross-traffic / measurement-noise stream (dedicated, so fabric
    /// draws never perturb the world's frame RNG).
    rng: StdRng,
    /// Per-(pair, direction, hop) egress busy horizon, ns.
    busy: BTreeMap<u64, i64>,
    /// Pending transparent-clock corrections keyed by
    /// (pair, direction, domain, sequence).
    pending_tc: BTreeMap<u64, i64>,
    /// Protected frames forwarded end to end.
    forwarded: u64,
    /// Protected frames dropped at a saturated hop.
    dropped: u64,
    /// Largest accumulated residence observed on one crossing, ns.
    max_residence_ns: u64,
}

impl Fabric {
    /// Builds the fabric for `switches` edge switches, drawing the
    /// static delay tables from `link_rng` and seeding the
    /// cross-traffic stream with `xtraffic_rng`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `switches < 2`.
    pub fn new(
        cfg: FabricConfig,
        switches: usize,
        link_rng: &mut StdRng,
        xtraffic_rng: StdRng,
    ) -> Self {
        cfg.validate();
        assert!(switches >= 2, "fabric needs at least two edge switches");
        let mut chains = Vec::new();
        for a in 0..switches {
            for b in (a + 1)..switches {
                let hops = cfg.topology.edge_distance(switches, a, b) * cfg.hops;
                let mut chain = Vec::with_capacity(hops as usize);
                for _ in 0..hops {
                    let base_ns = draw_in(
                        link_rng,
                        cfg.link_base_min.as_nanos(),
                        cfg.link_base_max.as_nanos(),
                    );
                    let res_ns = draw_in(
                        link_rng,
                        cfg.residence_min.as_nanos(),
                        cfg.residence_max.as_nanos(),
                    );
                    chain.push(Hop { base_ns, res_ns });
                }
                chains.push(chain);
            }
        }
        Fabric {
            cfg,
            switches,
            chains,
            rng: xtraffic_rng,
            busy: BTreeMap::new(),
            pending_tc: BTreeMap::new(),
            forwarded: 0,
            dropped: 0,
            max_residence_ns: 0,
        }
    }

    /// Protected frames forwarded end to end so far.
    pub fn frames_forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Protected frames dropped at a saturated hop so far.
    pub fn frames_dropped(&self) -> u64 {
        self.dropped
    }

    /// Largest accumulated residence observed on one crossing, ns.
    pub fn max_residence_ns(&self) -> u64 {
        self.max_residence_ns
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Number of fabric switches between edge switches `a` and `b`.
    pub fn hop_count(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        self.chains[self.pair_index(a, b)].len() as u32
    }

    /// Sends one protected-class frame of serialization time `ser_ns`
    /// across the fabric from edge switch `from` to edge switch `to`.
    pub fn traverse(
        &mut self,
        now: SimTime,
        from: usize,
        to: usize,
        ser_ns: i64,
        class: FrameClass,
    ) -> Traversal {
        debug_assert_ne!(from, to);
        let pair = self.pair_index(from, to);
        let dir_ab = from < to;
        let asym = self.cfg.asymmetry_ns.as_nanos();
        let tc = self.cfg.transparent_clock;

        // Transparent clocks correct peer-delay queuing out of the
        // turnaround: the effective delay collapses to propagation
        // (plus the per-hop measurement error).
        if tc && class == FrameClass::Pdelay {
            let mut delay = 0i64;
            for h in 0..self.chains[pair].len() {
                let hop = self.chains[pair][h];
                delay += hop.base_ns + if dir_ab { asym } else { 0 };
                delay += self.tc_noise();
            }
            self.forwarded += 1;
            return Traversal {
                delay: Nanos::from_nanos(delay.max(1)),
                residence_ns: 0,
                dropped: false,
            };
        }

        let cycle = self.cfg.gate_cycle.as_nanos();
        let window = self.cfg.protected_window.as_nanos();
        let hol_max = self.cfg.serialization_ns(self.cfg.cross_frame_bytes);
        let load = self.cfg.cross_traffic_load;
        let drop_ns = self.cfg.drop_horizon.as_nanos();
        let measure = tc && class == FrameClass::Sync;

        let t0 = now.as_nanos() as i64;
        let mut t = t0;
        let mut meas = 0i64;
        for h in 0..self.chains[pair].len() {
            let hop = self.chains[pair][h];
            t += hop.base_ns + if dir_ab { asym } else { 0 };
            let arrive = t;
            // Store-and-forward processing.
            t += hop.res_ns;
            // 802.1Qbv: wait for the next protected window.
            t += gate_wait(t, cycle, window);
            // No guard band: a best-effort cross frame that started
            // serializing just before the window still blocks the line.
            if load > 0.0 && self.rng.gen::<f64>() < load {
                t += self.rng.gen_range(0..hol_max.max(1));
            }
            // Serialize behind any protected frame ahead on this port.
            let key = busy_key(pair, dir_ab, h);
            let start = t.max(self.busy.get(&key).copied().unwrap_or(i64::MIN));
            if start - arrive > drop_ns {
                self.dropped += 1;
                return Traversal {
                    delay: Nanos::ZERO,
                    residence_ns: 0,
                    dropped: true,
                };
            }
            t = start + ser_ns;
            self.busy.insert(key, t);
            let mut hop_res = t - arrive;
            if measure {
                hop_res += self.tc_noise();
            }
            meas += hop_res;
        }
        self.forwarded += 1;
        self.max_residence_ns = self.max_residence_ns.max(meas.max(0).unsigned_abs());
        Traversal {
            delay: Nanos::from_nanos(t - t0),
            residence_ns: meas,
            dropped: false,
        }
    }

    /// Records a Sync's measured fabric residence until its Follow_Up
    /// crosses the same pair in the same direction.
    pub fn record_pending(
        &mut self,
        from: usize,
        to: usize,
        domain: u8,
        seq: u16,
        residence_ns: i64,
    ) {
        if self.pending_tc.len() >= PENDING_TC_CAP {
            self.pending_tc.pop_first();
        }
        let key = self.pending_key(from, to, domain, seq);
        self.pending_tc.insert(key, residence_ns);
    }

    /// Takes the pending correction recorded for `(from, to, domain,
    /// seq)`, if any.
    pub fn take_pending(&mut self, from: usize, to: usize, domain: u8, seq: u16) -> Option<i64> {
        let key = self.pending_key(from, to, domain, seq);
        self.pending_tc.remove(&key)
    }

    /// `(min, max)` extra path delay the fabric contributes in the
    /// `from → to` direction, as seen by the time-transfer math.
    ///
    /// In end-to-end mode the full traversal range applies: static
    /// propagation and residence plus, per hop, up to a full gate
    /// closure, one cross-traffic frame, and serialization behind the
    /// other domains' concurrent Syncs (`concurrent` protected frames
    /// of `ser_ns` each). In transparent-clock mode the correction
    /// field cancels everything but propagation and the per-hop
    /// measurement error.
    pub fn path_bounds(
        &self,
        from: usize,
        to: usize,
        ser_ns: i64,
        concurrent: i64,
    ) -> (Nanos, Nanos) {
        let pair = self.pair_index(from, to);
        let dir_ab = from < to;
        let asym = self.cfg.asymmetry_ns.as_nanos();
        let cycle = self.cfg.gate_cycle.as_nanos();
        let window = self.cfg.protected_window.as_nanos();
        let hol_max = self.cfg.serialization_ns(self.cfg.cross_frame_bytes);
        let mut lo = 0i64;
        let mut hi = 0i64;
        for hop in &self.chains[pair] {
            let prop = hop.base_ns + if dir_ab { asym } else { 0 };
            if self.cfg.transparent_clock {
                lo += prop - self.cfg.tc_error_ns;
                hi += prop + self.cfg.tc_error_ns;
            } else {
                lo += prop + hop.res_ns + ser_ns;
                hi += prop + hop.res_ns + (cycle - window) + hol_max + ser_ns * concurrent.max(1);
            }
        }
        (Nanos::from_nanos(lo), Nanos::from_nanos(hi))
    }

    /// The largest static directional path asymmetry over all pairs:
    /// `max |Σ d_{a→b} − Σ d_{b→a}|` in nanoseconds.
    pub fn path_asymmetry_ns(&self) -> u64 {
        let asym = self.cfg.asymmetry_ns.as_nanos();
        self.chains
            .iter()
            .map(|chain| (chain.len() as i64 * asym).unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    fn tc_noise(&mut self) -> i64 {
        let e = self.cfg.tc_error_ns;
        if e == 0 {
            0
        } else {
            self.rng.gen_range(-e..(e + 1))
        }
    }

    fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        debug_assert!(hi < self.switches);
        // Position of (lo, hi) in the lexicographic (a < b) enumeration.
        lo * (2 * self.switches - lo - 1) / 2 + (hi - lo - 1)
    }

    fn pending_key(&self, from: usize, to: usize, domain: u8, seq: u16) -> u64 {
        let pair = self.pair_index(from, to) as u64;
        let dir = u64::from(from < to);
        (pair << 32) | (dir << 24) | (u64::from(domain) << 16) | u64::from(seq)
    }
}

impl SnapState for Fabric {
    fn save_state(&self, w: &mut Writer) {
        self.rng.put(w);
        self.busy.put(w);
        self.pending_tc.put(w);
        self.forwarded.put(w);
        self.dropped.put(w);
        self.max_residence_ns.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.rng = Snap::get(r)?;
        self.busy = Snap::get(r)?;
        self.pending_tc = Snap::get(r)?;
        self.forwarded = Snap::get(r)?;
        self.dropped = Snap::get(r)?;
        self.max_residence_ns = Snap::get(r)?;
        Ok(())
    }
}

/// Wait until the protected window is open at `t_ns` under a gate
/// `cycle` with a protected window of `window` ns at each cycle start.
fn gate_wait(t_ns: i64, cycle: i64, window: i64) -> i64 {
    let phase = t_ns.rem_euclid(cycle);
    if phase < window {
        0
    } else {
        cycle - phase
    }
}

fn busy_key(pair: usize, dir_ab: bool, hop: usize) -> u64 {
    ((pair as u64) << 32) | (u64::from(dir_ab) << 16) | hop as u64
}

/// Uniform draw in `[min, max]` (inclusive).
fn draw_in(rng: &mut StdRng, min: i64, max: i64) -> i64 {
    if min == max {
        min
    } else {
        min + rng.gen_range(0..(max - min + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn fabric_with(cfg: FabricConfig) -> Fabric {
        let mut link_rng = StdRng::seed_from_u64(7);
        Fabric::new(cfg, 4, &mut link_rng, StdRng::seed_from_u64(8))
    }

    #[test]
    fn edge_distances_per_topology() {
        let n = 8;
        assert_eq!(FabricTopology::Line.edge_distance(n, 0, 3), 3);
        assert_eq!(FabricTopology::Line.edge_distance(n, 5, 5), 0);
        assert_eq!(FabricTopology::Ring.edge_distance(n, 0, 5), 3);
        assert_eq!(FabricTopology::Ring.edge_distance(n, 0, 3), 3);
        // Heap indices 1..=8: dist(1,2)=1 (node 0 ↔ node 1),
        // dist(4,5)=(idx 5, idx 6): 5→2→1, 6→3→1 ⇒ 4 steps.
        assert_eq!(FabricTopology::Tree.edge_distance(n, 0, 1), 1);
        assert_eq!(FabricTopology::Tree.edge_distance(n, 4, 5), 4);
    }

    #[test]
    fn hop_count_scales_with_knob_and_distance() {
        let f1 = fabric_with(FabricConfig::line(1));
        let f3 = fabric_with(FabricConfig::line(3));
        assert_eq!(f1.hop_count(0, 1), 1);
        assert_eq!(f1.hop_count(0, 3), 3);
        assert_eq!(f3.hop_count(0, 1), 3);
        assert_eq!(f3.hop_count(0, 3), 9);
        assert_eq!(f3.hop_count(2, 2), 0);
    }

    #[test]
    fn gate_wait_blocks_outside_window() {
        // Cycle 10 µs, window 4 µs.
        let (c, w) = (10_000, 4_000);
        assert_eq!(gate_wait(0, c, w), 0);
        assert_eq!(gate_wait(3_999, c, w), 0);
        assert_eq!(gate_wait(4_000, c, w), 6_000);
        assert_eq!(gate_wait(9_999, c, w), 1);
        assert_eq!(gate_wait(10_000, c, w), 0);
        assert_eq!(gate_wait(24_000, c, w), 6_000);
    }

    #[test]
    fn traversal_delay_grows_with_hops() {
        let mut prev = Nanos::ZERO;
        for hops in [1u32, 2, 4, 8] {
            let mut f = fabric_with(FabricConfig {
                cross_traffic_load: 0.4,
                ..FabricConfig::line(hops)
            });
            let tr = f.traverse(SimTime::from_millis(1), 0, 3, 720, FrameClass::Sync);
            assert!(!tr.dropped);
            assert!(
                tr.delay > prev,
                "hops={hops}: {} must exceed {}",
                tr.delay,
                prev
            );
            prev = tr.delay;
        }
    }

    #[test]
    fn transparent_clock_measures_full_residence() {
        let mut f = fabric_with(FabricConfig {
            transparent_clock: true,
            tc_error_ns: 0,
            cross_traffic_load: 0.5,
            ..FabricConfig::line(2)
        });
        let tr = f.traverse(SimTime::from_millis(3), 0, 2, 720, FrameClass::Sync);
        // With zero measurement error the accumulated residence is
        // exactly the non-propagation share of the delay.
        let pair_hops = f.hop_count(0, 2) as i64;
        let prop: i64 = tr.delay.as_nanos() - tr.residence_ns;
        assert!(prop > 0, "propagation share must be positive");
        assert!(
            prop <= pair_hops * f.config().link_base_max.as_nanos(),
            "propagation share bounded by the static draws"
        );
    }

    #[test]
    fn transparent_clock_calibrates_pdelay_to_propagation() {
        let cfg = FabricConfig {
            transparent_clock: true,
            tc_error_ns: 0,
            cross_traffic_load: 0.9,
            ..FabricConfig::line(4)
        };
        let mut f = fabric_with(cfg);
        let tr = f.traverse(SimTime::from_millis(9), 1, 3, 720, FrameClass::Pdelay);
        let hops = f.hop_count(1, 3) as i64;
        assert!(tr.delay.as_nanos() >= hops * cfg.link_base_min.as_nanos());
        assert!(tr.delay.as_nanos() <= hops * cfg.link_base_max.as_nanos());
        assert_eq!(tr.residence_ns, 0);
    }

    #[test]
    fn concurrent_frames_serialize_on_the_same_port() {
        let mut f = fabric_with(FabricConfig::line(1));
        let now = SimTime::from_millis(2);
        let a = f.traverse(now, 0, 1, 720, FrameClass::Sync);
        let b = f.traverse(now, 0, 1, 720, FrameClass::Sync);
        assert!(
            b.delay.as_nanos() >= a.delay.as_nanos() + 720,
            "the second frame must queue behind the first"
        );
        // The reverse direction is an independent port.
        let c = f.traverse(now, 1, 0, 720, FrameClass::Sync);
        assert!(c.delay.as_nanos() < b.delay.as_nanos());
    }

    #[test]
    fn saturated_port_drops_past_the_horizon() {
        let mut f = fabric_with(FabricConfig {
            drop_horizon: Nanos::from_micros(50),
            ..FabricConfig::line(1)
        });
        let now = SimTime::from_millis(2);
        let mut dropped = false;
        for _ in 0..200 {
            // 12 µs frames pile up on one port until the horizon trips.
            if f.traverse(now, 0, 1, 12_000, FrameClass::Sync).dropped {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "a saturated port must eventually drop");
    }

    #[test]
    fn pending_corrections_roundtrip_and_evict() {
        let mut f = fabric_with(FabricConfig::line(1));
        f.record_pending(0, 1, 2, 77, 1234);
        assert_eq!(f.take_pending(0, 1, 2, 77), Some(1234));
        assert_eq!(f.take_pending(0, 1, 2, 77), None);
        // Direction matters.
        f.record_pending(1, 0, 2, 77, 99);
        assert_eq!(f.take_pending(0, 1, 2, 77), None);
        assert_eq!(f.take_pending(1, 0, 2, 77), Some(99));
        // The map is bounded.
        for seq in 0..(2 * PENDING_TC_CAP as u16) {
            f.record_pending(0, 1, 0, seq, i64::from(seq));
        }
        assert!(f.pending_tc.len() <= PENDING_TC_CAP);
    }

    #[test]
    fn path_bounds_widen_with_depth_in_e2e_and_stay_tight_with_tc() {
        let e2e_2 = fabric_with(FabricConfig::line(2));
        let e2e_6 = fabric_with(FabricConfig::line(6));
        let (lo2, hi2) = e2e_2.path_bounds(0, 3, 720, 4);
        let (lo6, hi6) = e2e_6.path_bounds(0, 3, 720, 4);
        assert!(hi2 - lo2 > Nanos::ZERO);
        assert!(hi6 - lo6 > (hi2 - lo2) * 2, "uncertainty grows with depth");

        let tc_6 = fabric_with(FabricConfig {
            transparent_clock: true,
            ..FabricConfig::line(6)
        });
        let (tlo, thi) = tc_6.path_bounds(0, 3, 720, 4);
        let tc_width = thi - tlo;
        assert_eq!(
            tc_width.as_nanos(),
            2 * tc_6.config().tc_error_ns * i64::from(tc_6.hop_count(0, 3)),
            "TC uncertainty is the accumulated measurement error only"
        );
        assert!(tc_width < (hi6 - lo6) / 10);
    }

    #[test]
    fn configured_asymmetry_is_directional_and_reported() {
        let cfg = FabricConfig {
            asymmetry_ns: Nanos::from_nanos(200),
            ..FabricConfig::line(2)
        };
        let f = fabric_with(cfg);
        let (lo_ab, _) = f.path_bounds(0, 3, 720, 4);
        let (lo_ba, _) = f.path_bounds(3, 0, 720, 4);
        let hops = i64::from(f.hop_count(0, 3));
        assert_eq!(lo_ab - lo_ba, Nanos::from_nanos(200 * hops));
        assert_eq!(f.path_asymmetry_ns(), (200 * hops) as u64);
        assert_eq!(fabric_with(FabricConfig::line(2)).path_asymmetry_ns(), 0);
    }

    #[test]
    fn snapshot_roundtrips_and_resumes_identically() {
        let cfg = FabricConfig {
            cross_traffic_load: 0.5,
            transparent_clock: true,
            ..FabricConfig::line(3)
        };
        let mut a = fabric_with(cfg);
        for i in 0..10u64 {
            a.traverse(
                SimTime::from_nanos(i * 125_000),
                0,
                2,
                720,
                FrameClass::Sync,
            );
        }
        a.record_pending(0, 2, 1, 5, 4321);

        let mut w = Writer::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut b = fabric_with(cfg);
        b.load_state(&mut Reader::new(&bytes)).expect("load");

        // Same draws, same busy horizons, same pending corrections.
        assert_eq!(b.take_pending(0, 2, 1, 5), Some(4321));
        a.take_pending(0, 2, 1, 5);
        for i in 10..20u64 {
            let now = SimTime::from_nanos(i * 125_000);
            assert_eq!(
                a.traverse(now, 0, 2, 720, FrameClass::Sync),
                b.traverse(now, 0, 2, 720, FrameClass::Sync)
            );
        }
    }

    #[test]
    #[should_panic(expected = "hops must be in 1..=64")]
    fn zero_hops_rejected() {
        FabricConfig::line(0).validate();
    }

    #[test]
    #[should_panic(expected = "protected window")]
    fn window_must_fit_cycle() {
        FabricConfig {
            protected_window: Nanos::from_micros(20),
            gate_cycle: Nanos::from_micros(12),
            ..FabricConfig::default()
        }
        .validate();
    }

    #[test]
    fn config_is_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<FabricConfig>();
    }
}
