//! Deterministic fleet-scale topology generator.
//!
//! The paper's testbed is four ECDs around one integrated switch; a
//! deployed vehicle fleet backend aggregates hundreds to thousands of
//! ECDs behind a switched backbone. [`FleetTopology`] generates that
//! backbone — a line, ring, balanced tree, or three-stage fat-tree of
//! TSN switches with every ECD attached to an edge switch and a
//! per-switch store-and-forward residence drawn statically — as a
//! *pure function* of `(nodes, shape, seed)`. Generation allocates no
//! global state and reads no ambient randomness, so two workers on
//! different threads (or the same worker re-running after a resume)
//! produce byte-identical topologies; [`FleetTopology::fingerprint`]
//! pins exactly that.
//!
//! The generated fleet is *condensed* into a [`FabricConfig`] for
//! simulation ([`FleetTopology::condense`]): the graph's diameter
//! becomes the fabric depth (clamped to the fabric's 1..=64 hop
//! budget), the drawn residence spread becomes the residence range,
//! and the shape maps onto the nearest [`FabricTopology`] distance
//! metric. The paper-scale world keeps its 4–16 synchronization
//! domains; the fleet models the *network* between them at scale, not
//! 1024 gPTP state machines.

use crate::{FabricConfig, FabricTopology};
use serde::{Deserialize, Serialize};
use tsn_time::Nanos;

/// ECDs attached per edge switch (automotive TSN edge switches
/// commonly expose 8–16 end-station ports; 16 keeps switch counts —
/// and therefore diameter growth — conservative).
pub const ECDS_PER_SWITCH: u32 = 16;

/// Per-switch residence draw range (lower bound, ns): covers fast
/// cut-through-class store-and-forward silicon.
const RESIDENCE_DRAW_MIN_NS: i64 = 400;
/// Per-switch residence draw range (upper bound, ns).
const RESIDENCE_DRAW_MAX_NS: i64 = 900;

/// Shape of the generated switch fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetShape {
    /// Switches in a path: worst-case diameter, the depth stressor.
    Line,
    /// Switches in a cycle: halves the line's diameter.
    Ring,
    /// Balanced binary tree (heap-shaped): logarithmic diameter.
    Tree,
    /// Three-stage edge/aggregation/core fat-tree: constant diameter
    /// (≤ 4 inter-switch hops edge to edge).
    FatTree,
}

impl FleetShape {
    /// Every shape, in the stable campaign-axis order.
    pub const ALL: [FleetShape; 4] = [
        FleetShape::Line,
        FleetShape::Ring,
        FleetShape::Tree,
        FleetShape::FatTree,
    ];

    /// The stable textual name (campaign-axis spelling).
    pub fn name(self) -> &'static str {
        match self {
            FleetShape::Line => "line",
            FleetShape::Ring => "ring",
            FleetShape::Tree => "tree",
            FleetShape::FatTree => "fat-tree",
        }
    }

    /// Parses a shape name.
    pub fn parse(name: &str) -> Option<FleetShape> {
        FleetShape::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One switch of the generated fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSwitch {
    /// Dense identifier (`0..switch_count`).
    pub id: u32,
    /// Statically drawn store-and-forward residence, in nanoseconds.
    pub residence_ns: i64,
}

/// An undirected inter-switch link (`a < b`; hairpins are impossible
/// by construction and rejected by [`FleetTopology::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetLink {
    /// Lower switch id.
    pub a: u32,
    /// Higher switch id.
    pub b: u32,
}

/// A generated fleet topology: switches, inter-switch links, and the
/// edge switch each ECD attaches to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    /// The shape this fleet was generated with.
    pub shape: FleetShape,
    /// Number of attached ECDs.
    pub nodes: u32,
    /// The generator seed (splittable-seed discipline: derived from
    /// the grid seed and the fleet axes only).
    pub seed: u64,
    /// The switches, dense by id, each with its drawn residence.
    pub switches: Vec<FleetSwitch>,
    /// Undirected inter-switch links, sorted `(a, b)`.
    pub links: Vec<FleetLink>,
    /// `attachments[ecd]` = id of the edge switch the ECD hangs off.
    pub attachments: Vec<u32>,
}

/// FNV-1a over a label with the seed folded in, finalized with a
/// splitmix64 avalanche — the same splittable-seed discipline the
/// workspace's `SeedSplitter` uses, duplicated locally so this crate
/// keeps its minimal dependency set.
fn split(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &byte in label.as_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer: avalanches the low-entropy FNV tail.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl FleetTopology {
    /// Generates the fleet for `nodes` ECDs in the given shape.
    ///
    /// Pure: the result (and its [`FleetTopology::fingerprint`]) is a
    /// function of the three arguments alone — no thread-locals, no
    /// ambient RNG, no iteration-order dependence.
    ///
    /// `nodes` is clamped to at least 2 (a fleet of one ECD has no
    /// inter-node traffic to carry).
    pub fn generate(nodes: u32, shape: FleetShape, seed: u64) -> FleetTopology {
        let nodes = nodes.max(2);
        let edge_count = nodes.div_ceil(ECDS_PER_SWITCH).max(1);
        let (switch_count, links) = match shape {
            FleetShape::Line => {
                let links = (1..edge_count).map(|i| FleetLink { a: i - 1, b: i }).collect();
                (edge_count, links)
            }
            FleetShape::Ring => {
                if edge_count < 3 {
                    // A 2-switch "ring" is a doubled line edge; degrade
                    // to the line so links stay simple (no multi-edges).
                    let links = (1..edge_count).map(|i| FleetLink { a: i - 1, b: i }).collect();
                    (edge_count, links)
                } else {
                    let mut links: Vec<FleetLink> = (1..edge_count)
                        .map(|i| FleetLink { a: i - 1, b: i })
                        .collect();
                    links.push(FleetLink {
                        a: 0,
                        b: edge_count - 1,
                    });
                    links.sort_by_key(|l| (l.a, l.b));
                    (edge_count, links)
                }
            }
            FleetShape::Tree => {
                // Heap-shaped binary tree over the edge switches
                // themselves (interior switches also carry ECDs, like a
                // daisy-chained zonal architecture).
                let links = (1..edge_count)
                    .map(|i| FleetLink {
                        a: (i - 1) / 2,
                        b: i,
                    })
                    .collect();
                (edge_count, links)
            }
            FleetShape::FatTree => {
                // Three-stage Clos: the ECD-bearing edge switches, an
                // aggregation tier of half as many, a core tier of a
                // quarter. Each edge dual-homes into two aggregation
                // switches; each aggregation switch homes into two
                // cores — diameter ≤ 4 regardless of fleet size.
                let agg = (edge_count / 2).max(1);
                let core = (agg / 2).max(1);
                let agg_base = edge_count;
                let core_base = edge_count + agg;
                let mut links = Vec::new();
                for e in 0..edge_count {
                    links.push(FleetLink {
                        a: e,
                        b: agg_base + e % agg,
                    });
                    if agg > 1 {
                        links.push(FleetLink {
                            a: e,
                            b: agg_base + (e + 1) % agg,
                        });
                    }
                }
                for a in 0..agg {
                    links.push(FleetLink {
                        a: agg_base + a,
                        b: core_base + a % core,
                    });
                    if core > 1 {
                        links.push(FleetLink {
                            a: agg_base + a,
                            b: core_base + (a + 1) % core,
                        });
                    }
                }
                links.sort_by_key(|l| (l.a, l.b));
                links.dedup();
                (edge_count + agg + core, links)
            }
        };
        let switches = (0..switch_count)
            .map(|id| {
                let span = (RESIDENCE_DRAW_MAX_NS - RESIDENCE_DRAW_MIN_NS + 1) as u64;
                let draw = split(seed, &format!("switch/{id}/residence")) % span;
                FleetSwitch {
                    id,
                    residence_ns: RESIDENCE_DRAW_MIN_NS + draw as i64,
                }
            })
            .collect();
        let attachments = (0..nodes).map(|ecd| ecd % edge_count).collect();
        FleetTopology {
            shape,
            nodes,
            seed,
            switches,
            links,
            attachments,
        }
    }

    /// Number of switches in the fleet.
    pub fn switch_count(&self) -> u32 {
        self.switches.len() as u32
    }

    /// The graph diameter in inter-switch hops (exact, by BFS from
    /// every switch). A single-switch fleet has diameter 0.
    pub fn diameter(&self) -> u32 {
        let n = self.switches.len();
        let mut adjacency = vec![Vec::new(); n];
        for l in &self.links {
            adjacency[l.a as usize].push(l.b as usize);
            adjacency[l.b as usize].push(l.a as usize);
        }
        let mut diameter = 0u32;
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[start] = 0;
            queue.clear();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let ecc = dist.iter().copied().max().unwrap_or(0);
            assert!(ecc != u32::MAX, "fleet graph is disconnected");
            diameter = diameter.max(ecc);
        }
        diameter
    }

    /// Checks structural invariants.
    ///
    /// # Panics
    ///
    /// Panics on a malformed topology: non-dense switch ids, hairpin
    /// or duplicate links, out-of-range attachments, or a disconnected
    /// graph (via [`FleetTopology::diameter`]).
    pub fn validate(&self) {
        assert!(!self.switches.is_empty(), "fleet has no switches");
        assert!(self.nodes >= 2, "fleet needs at least 2 ECDs");
        for (i, s) in self.switches.iter().enumerate() {
            assert_eq!(s.id as usize, i, "switch ids must be dense");
            assert!(
                (RESIDENCE_DRAW_MIN_NS..=RESIDENCE_DRAW_MAX_NS).contains(&s.residence_ns),
                "residence outside the draw range"
            );
        }
        let count = self.switch_count();
        for w in self.links.windows(2) {
            assert!(
                (w[0].a, w[0].b) < (w[1].a, w[1].b),
                "links must be strictly sorted (no duplicates)"
            );
        }
        for l in &self.links {
            assert!(l.a < l.b, "hairpin or unnormalized link {l:?}");
            assert!(l.b < count, "link references unknown switch {l:?}");
        }
        assert_eq!(self.attachments.len(), self.nodes as usize);
        for &sw in &self.attachments {
            assert!(sw < count, "attachment references unknown switch");
        }
        self.diameter(); // panics if disconnected
    }

    /// Condenses the fleet into a [`FabricConfig`] the simulator can
    /// run: the diameter becomes the fabric depth (clamped to the
    /// fabric's 1..=64 hop budget — a 4096-switch line condenses to
    /// the deepest representable fabric), the drawn residence spread
    /// becomes the residence range, and the shape maps to the nearest
    /// [`FabricTopology`] distance metric (a fat-tree condenses to the
    /// tree metric). Everything else is taken from `base`.
    pub fn condense(&self, base: &FabricConfig) -> FabricConfig {
        let residence_min = self
            .switches
            .iter()
            .map(|s| s.residence_ns)
            .min()
            .unwrap_or(RESIDENCE_DRAW_MIN_NS);
        let residence_max = self
            .switches
            .iter()
            .map(|s| s.residence_ns)
            .max()
            .unwrap_or(RESIDENCE_DRAW_MAX_NS);
        FabricConfig {
            topology: match self.shape {
                FleetShape::Line => FabricTopology::Line,
                FleetShape::Ring => FabricTopology::Ring,
                FleetShape::Tree | FleetShape::FatTree => FabricTopology::Tree,
            },
            hops: self.diameter().clamp(1, 64),
            residence_min: Nanos::from_nanos(residence_min),
            residence_max: Nanos::from_nanos(residence_max),
            ..*base
        }
    }

    /// The canonical byte encoding (the fingerprint's preimage):
    /// every structural field in a fixed order.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.shape.name().as_bytes());
        out.push(b'|');
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        for s in &self.switches {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&s.residence_ns.to_le_bytes());
        }
        for l in &self.links {
            out.extend_from_slice(&l.a.to_le_bytes());
            out.extend_from_slice(&l.b.to_le_bytes());
        }
        for &a in &self.attachments {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out
    }

    /// A 64-bit FNV-1a fingerprint of [`FleetTopology::canonical_bytes`]
    /// — two byte-identical topologies (and only those) share it.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in &self.canonical_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_its_inputs() {
        for shape in FleetShape::ALL {
            let a = FleetTopology::generate(256, shape, 0xDEAD_BEEF);
            let b = FleetTopology::generate(256, shape, 0xDEAD_BEEF);
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
            let other_seed = FleetTopology::generate(256, shape, 0xDEAD_BEF0);
            assert_ne!(a.fingerprint(), other_seed.fingerprint());
        }
    }

    #[test]
    fn shapes_have_the_expected_structure() {
        // 256 ECDs → 16 edge switches.
        let line = FleetTopology::generate(256, FleetShape::Line, 1);
        assert_eq!(line.switch_count(), 16);
        assert_eq!(line.diameter(), 15);
        let ring = FleetTopology::generate(256, FleetShape::Ring, 1);
        assert_eq!(ring.switch_count(), 16);
        assert_eq!(ring.diameter(), 8);
        let tree = FleetTopology::generate(256, FleetShape::Tree, 1);
        assert_eq!(tree.switch_count(), 16);
        assert!(tree.diameter() <= 2 * 4, "heap of 16 has depth 4");
        let fat = FleetTopology::generate(256, FleetShape::FatTree, 1);
        assert_eq!(fat.switch_count(), 16 + 8 + 4);
        assert!(fat.diameter() <= 4, "three-stage Clos caps at 4 hops");
        for t in [line, ring, tree, fat] {
            t.validate();
        }
    }

    #[test]
    fn tiny_and_huge_fleets_validate_and_condense() {
        let base = FabricConfig::default();
        for shape in FleetShape::ALL {
            for nodes in [1u32, 2, 3, 16, 17, 33, 1024, 65_536] {
                let fleet = FleetTopology::generate(nodes, shape, 42);
                fleet.validate();
                let cfg = fleet.condense(&base);
                cfg.validate();
                assert!((1..=64).contains(&cfg.hops));
                assert!(cfg.residence_min <= cfg.residence_max);
            }
        }
    }

    #[test]
    fn condense_clamps_the_deep_line_to_the_hop_budget() {
        // 4096 ECDs → 256 edge switches → line diameter 255, clamped.
        let fleet = FleetTopology::generate(4096, FleetShape::Line, 9);
        assert_eq!(fleet.diameter(), 255);
        let cfg = fleet.condense(&FabricConfig::default());
        assert_eq!(cfg.hops, 64);
        cfg.validate();
    }

    #[test]
    fn shape_names_roundtrip() {
        for shape in FleetShape::ALL {
            assert_eq!(FleetShape::parse(shape.name()), Some(shape));
        }
        assert_eq!(FleetShape::parse("torus"), None);
    }
}
