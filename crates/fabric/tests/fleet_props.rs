//! Property tests for the fleet topology generator.
//!
//! `FleetTopology::generate` feeds the campaign's `fleet_nodes` /
//! `fleet_topology` axes, so it inherits the campaign's determinism
//! contract: the generated fabric must be a pure function of
//! `(nodes, shape, seed)` — byte-identical no matter how many worker
//! threads enumerate the grid or in what order — and every generated
//! topology must condense into a `FabricConfig` that passes the
//! fabric's own invariants (connected, no hairpins, hops within the
//! 1..=64 budget).

use proptest::prelude::*;
use proptest::rand::rngs::StdRng;
use proptest::rand::Rng;
use tsn_fabric::{FabricConfig, FleetShape, FleetTopology};

/// An arbitrary fleet request: node count across the supported range,
/// one of the four shapes, and an arbitrary seed.
#[derive(Debug, Clone, Copy)]
struct Request {
    nodes: u32,
    shape: FleetShape,
    seed: u64,
}

struct ArbRequest;

impl proptest::strategy::Strategy for ArbRequest {
    type Value = Request;
    fn generate(&self, rng: &mut StdRng) -> Request {
        // Bias toward small fleets (cheap) but cover the campaign's
        // full 2..=65 536 validated range.
        let nodes = if rng.gen() {
            rng.gen_range(2..512u32)
        } else {
            rng.gen_range(512..=65_536u32)
        };
        let shape = FleetShape::ALL[rng.gen_range(0..FleetShape::ALL.len())];
        Request {
            nodes,
            shape,
            seed: rng.gen(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation is a pure function of its inputs: regenerating on
    /// several concurrent threads — and in reversed enumeration order —
    /// yields the same canonical bytes as a single sequential pass.
    #[test]
    fn generation_is_byte_identical_across_threads_and_orders(reqs in proptest::collection::vec(ArbRequest, 1..6)) {
        let sequential: Vec<Vec<u8>> = reqs
            .iter()
            .map(|r| FleetTopology::generate(r.nodes, r.shape, r.seed).canonical_bytes())
            .collect();
        // Reversed enumeration order.
        let mut reversed: Vec<Vec<u8>> = reqs
            .iter()
            .rev()
            .map(|r| FleetTopology::generate(r.nodes, r.shape, r.seed).canonical_bytes())
            .collect();
        reversed.reverse();
        prop_assert_eq!(&sequential, &reversed);
        // One thread per request, racing.
        let threaded: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = reqs
                .iter()
                .map(|r| {
                    scope.spawn(move || {
                        FleetTopology::generate(r.nodes, r.shape, r.seed).canonical_bytes()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        prop_assert_eq!(&sequential, &threaded);
    }

    /// Every generated topology passes its structural invariants and
    /// condenses into a fabric configuration the fabric itself accepts.
    #[test]
    fn generated_fleets_validate_and_condense(r in ArbRequest) {
        let fleet = FleetTopology::generate(r.nodes, r.shape, r.seed);
        fleet.validate(); // panics on hairpins, disconnection, bad ids
        let cfg = fleet.condense(&FabricConfig::default());
        cfg.validate(); // panics on an inconsistent configuration
        prop_assert!((1..=64).contains(&cfg.hops), "hops {} out of budget", cfg.hops);
    }

    /// Different seeds draw different per-switch residences (the seed
    /// actually reaches the generator), while the wiring stays a
    /// function of shape and node count alone.
    #[test]
    fn seed_moves_residences_but_not_wiring(r in ArbRequest) {
        let a = FleetTopology::generate(r.nodes, r.shape, r.seed);
        let b = FleetTopology::generate(r.nodes, r.shape, r.seed ^ 0x9e37_79b9_7f4a_7c15);
        prop_assert_eq!(&a.links, &b.links);
        prop_assert_eq!(&a.attachments, &b.attachments);
        if a.switch_count() >= 8 {
            // With ≥ 8 draws from a 501-wide range, two seeds agreeing
            // on every residence would mean the seed is ignored.
            let same = a
                .switches
                .iter()
                .zip(&b.switches)
                .all(|(x, y)| x.residence_ns == y.residence_ns);
            prop_assert!(!same, "residences identical across seeds");
        }
    }
}
