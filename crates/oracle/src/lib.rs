//! # tsn-oracle
//!
//! Runtime invariant checking for the `clocksync` simulation of
//! *IEEE 802.1AS Multi-Domain Aggregation for Virtualized Distributed
//! Real-Time Systems* (DSN-S 2023).
//!
//! The paper's argument rests on containment invariants: the
//! fault-tolerant average must land inside the range of correct grand
//! masters (§II, Kopetz–Ochsenreiter), the precision bound Π must follow
//! the §III-A3 algebra, and the virtualized `CLOCK_SYNCTIME` must stay
//! monotonic and continuous across VM takeovers (§III-B). This crate
//! turns those one-shot test assertions into a reusable conformance
//! layer: an [`Invariant`] trait plus an [`OracleRegistry`] of standard
//! checkers that the simulation [feeds observations] while stepping.
//!
//! [feeds observations]: Observation
//!
//! The oracle is strictly passive — it draws no randomness, schedules no
//! events, and holds no simulation state, so enabling it cannot perturb
//! the deterministic run (state hashes and artifacts are byte-identical
//! with the oracle on or off). Violations are reported as structured
//! [`ViolationRecord`]s (simulation time, component, invariant, witness
//! values) through `tsn-metrics`.
//!
//! ```
//! use tsn_oracle::{Observation, OracleConfig, OracleRegistry};
//! use tsn_time::{Nanos, SimTime};
//!
//! let mut oracle = OracleRegistry::standard(OracleConfig::default());
//! // An event dispatched before an earlier one breaks causality.
//! oracle.observe(&Observation::Event { at: SimTime::from_secs(2) });
//! oracle.observe(&Observation::Event { at: SimTime::from_secs(1) });
//! oracle.finish();
//! assert_eq!(oracle.violations().len(), 1);
//! assert_eq!(oracle.violations()[0].invariant, "event-causality");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod invariants;

pub use invariants::{
    AtMostOneActingMaster, BoundAlgebra, ElectionConvergence, EventCausality, FabricConservation,
    FrameConservation, FtaContainment, HoldoverDrift, ServoClamp, SyncStateLegality,
    SynctimeContinuity,
};
pub use tsn_metrics::{ViolationLog, ViolationRecord};

use tsn_time::{Nanos, Ppb, SimTime, SyncState};

/// Parameters the standard invariants need from the simulation config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Warm-up horizon; `CLOCK_SYNCTIME` continuity is only judged after
    /// it (the servo may legitimately step while converging).
    pub warmup: SimTime,
    /// The phc2sys step threshold (paper: 20 µs) — the largest
    /// discontinuity a disciplined clock may legitimately exhibit.
    pub step_threshold: Nanos,
    /// The servo's frequency clamp (paper: ±900 ppm).
    pub max_frequency_ppb: Ppb,
    /// FTA trim degree `f` of the active aggregation method, or `None`
    /// when the method provides no Byzantine masking (Mean/Median
    /// ablations) and containment is not claimed.
    pub f: Option<usize>,
    /// Bound on grandmaster-election settling (election mode): after a
    /// GM failure a replacement must act within this window, and two
    /// acting masters may overlap on one domain for at most this long.
    pub election_convergence: Nanos,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            warmup: SimTime::ZERO,
            step_threshold: Nanos::from_micros(20),
            max_frequency_ppb: 900_000.0,
            f: Some(1),
            election_convergence: Nanos::from_millis(2_000),
        }
    }
}

/// One observation the simulation reports to the oracle.
///
/// Observations are borrowed views into simulation state; invariants
/// copy what they need and never hold references past the call.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation<'a> {
    /// An event was popped from the queue and is about to be handled.
    Event {
        /// Dispatch time.
        at: SimTime,
    },
    /// A periodic noise-free `CLOCK_SYNCTIME` reading on one node.
    Synctime {
        /// True (simulation) time of the reading.
        at: SimTime,
        /// Node the clock belongs to.
        node: usize,
        /// The virtual clock reading, in nanoseconds.
        synctime_ns: i64,
    },
    /// The multi-domain aggregator produced a new aggregate offset.
    Aggregated {
        /// Aggregation time.
        at: SimTime,
        /// Node whose aggregator fired.
        node: usize,
        /// The aggregate offset handed to the servo.
        offset: Nanos,
        /// `true` when the aggregator ran its fault-tolerant mode (the
        /// startup mode follows a single domain and claims nothing).
        fault_tolerant: bool,
        /// The `(domain, offset)` inputs the aggregation considered.
        used: &'a [(usize, Nanos)],
        /// Per-domain Byzantine marks from the active scenario
        /// (indexed by domain id).
        byzantine: &'a [bool],
    },
    /// The PHC servo issued a frequency correction.
    ServoFrequency {
        /// Correction time.
        at: SimTime,
        /// Node the servo belongs to.
        node: usize,
        /// Clock-sync VM slot on that node.
        slot: usize,
        /// The commanded frequency adjustment.
        freq_adj_ppb: Ppb,
    },
    /// A frame entered an egress queue (port busy or backlogged).
    FrameEnqueued {
        /// Enqueue time.
        at: SimTime,
    },
    /// A frame was popped from an egress queue for transmission.
    FramePopped {
        /// Pop time.
        at: SimTime,
    },
    /// A frame departed onto the wire.
    FrameDelivered {
        /// Departure time.
        at: SimTime,
        /// `true` when the frame had waited in an egress queue.
        from_queue: bool,
    },
    /// A frame was explicitly dropped (e.g. its source VM died).
    FrameDropped {
        /// Drop time.
        at: SimTime,
        /// `true` when the frame had waited in an egress queue.
        from_queue: bool,
    },
    /// A protected frame crossed the multi-hop switch fabric (or was
    /// dropped at a saturated fabric hop).
    FabricCrossing {
        /// Crossing (departure) time.
        at: SimTime,
        /// `true` when the fabric dropped the frame instead of
        /// forwarding it.
        dropped: bool,
    },
    /// End-of-run fabric forwarding totals, for conservation across the
    /// switch queues.
    FabricTotals {
        /// End-of-run time.
        at: SimTime,
        /// Frames the fabric forwarded end to end.
        forwarded: u64,
        /// Frames the fabric dropped at a saturated hop.
        dropped: u64,
    },
    /// The derived bounds report of the finished run (§III-A3 algebra).
    Bounds {
        /// Report time (end of run).
        at: SimTime,
        /// Number of gPTP domains N.
        n: usize,
        /// Fault-tolerance degree f.
        f: usize,
        /// Maximum oscillator drift rate used for Γ.
        r_max_ppb: Ppb,
        /// Synchronization interval S used for Γ.
        sync_interval: Nanos,
        /// Reported minimum path delay.
        d_min: Nanos,
        /// Reported maximum path delay.
        d_max: Nanos,
        /// Reported reading error E.
        reading_error: Nanos,
        /// Reported drift offset Γ.
        drift_offset: Nanos,
        /// Reported precision bound Π.
        pi: Nanos,
    },
    /// The run ended; queue residuals are reported for conservation.
    RunEnd {
        /// End-of-run time.
        at: SimTime,
        /// Frames still waiting in egress queues at the end.
        residual_frames: u64,
    },
    /// A node's acting-grandmaster status changed on a domain (election
    /// mode): `true` when it started emitting Sync/Announce as master,
    /// `false` when it ceded the role.
    ElectionActing {
        /// Transition time.
        at: SimTime,
        /// gPTP domain concerned.
        domain: usize,
        /// Node whose role changed.
        node: usize,
        /// New acting-master status.
        acting: bool,
    },
    /// The scenario killed the acting grandmaster of a domain (the
    /// re-election stopwatch starts here).
    GmKilled {
        /// Kill time.
        at: SimTime,
        /// gPTP domain that lost its grandmaster.
        domain: usize,
    },
    /// A clock-sync VM's aggregator changed degradation state.
    SyncTransition {
        /// Transition time.
        at: SimTime,
        /// Node the aggregator belongs to.
        node: usize,
        /// Clock-sync VM slot on that node.
        slot: usize,
        /// State left.
        from: SyncState,
        /// State entered.
        to: SyncState,
    },
}

/// A runtime conformance checker.
///
/// Invariants accumulate state from [`Observation`]s and report
/// violations into the shared [`ViolationLog`]; whole-run properties
/// (conservation totals) are judged in [`Invariant::finish`].
pub trait Invariant {
    /// Stable invariant name used in violation records.
    fn name(&self) -> &'static str;
    /// Feeds one observation.
    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog);
    /// Judges end-of-run properties after the last observation.
    fn finish(&mut self, log: &mut ViolationLog) {
        let _ = log;
    }
}

/// The set of invariants active for one run, plus the violation log.
pub struct OracleRegistry {
    invariants: Vec<Box<dyn Invariant>>,
    log: ViolationLog,
}

impl std::fmt::Debug for OracleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&'static str> = self.invariants.iter().map(|i| i.name()).collect();
        f.debug_struct("OracleRegistry")
            .field("invariants", &names)
            .field("violations", &self.log.len())
            .finish()
    }
}

impl OracleRegistry {
    /// The standard registry: all eleven conformance invariants.
    pub fn standard(cfg: OracleConfig) -> Self {
        OracleRegistry::with_invariants(vec![
            Box::new(EventCausality::new()),
            Box::new(SynctimeContinuity::new(
                cfg.warmup,
                cfg.step_threshold,
                cfg.max_frequency_ppb,
            )),
            Box::new(FrameConservation::new()),
            Box::new(FabricConservation::new()),
            Box::new(FtaContainment::new(cfg.f)),
            Box::new(ServoClamp::new(cfg.max_frequency_ppb)),
            Box::new(BoundAlgebra::new()),
            Box::new(SyncStateLegality::new()),
            Box::new(HoldoverDrift::new(
                cfg.warmup,
                cfg.step_threshold,
                cfg.max_frequency_ppb,
            )),
            Box::new(AtMostOneActingMaster::new(cfg.election_convergence)),
            Box::new(ElectionConvergence::new(cfg.election_convergence)),
        ])
    }

    /// A registry over a custom invariant set.
    pub fn with_invariants(invariants: Vec<Box<dyn Invariant>>) -> Self {
        OracleRegistry {
            invariants,
            log: ViolationLog::new(),
        }
    }

    /// Feeds one observation to every invariant.
    pub fn observe(&mut self, obs: &Observation<'_>) {
        for inv in &mut self.invariants {
            inv.observe(obs, &mut self.log);
        }
    }

    /// Judges end-of-run properties.
    pub fn finish(&mut self) {
        for inv in &mut self.invariants {
            inv.finish(&mut self.log);
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[ViolationRecord] {
        self.log.records()
    }

    /// Drains the recorded violations.
    pub fn take_violations(&mut self) -> Vec<ViolationRecord> {
        std::mem::take(&mut self.log).into_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_silent_on_no_observations() {
        let mut oracle = OracleRegistry::standard(OracleConfig::default());
        oracle.finish();
        assert!(oracle.violations().is_empty());
    }

    #[test]
    fn registry_fans_observations_to_all_invariants() {
        let mut oracle = OracleRegistry::standard(OracleConfig::default());
        oracle.observe(&Observation::Event {
            at: SimTime::from_secs(5),
        });
        oracle.observe(&Observation::Event {
            at: SimTime::from_secs(4),
        });
        oracle.observe(&Observation::ServoFrequency {
            at: SimTime::from_secs(5),
            node: 0,
            slot: 0,
            freq_adj_ppb: 1_000_000.0,
        });
        oracle.finish();
        let names: Vec<&str> = oracle
            .violations()
            .iter()
            .map(|v| v.invariant.as_str())
            .collect();
        assert_eq!(names, vec!["event-causality", "servo-clamp"]);
        let drained = oracle.take_violations();
        assert_eq!(drained.len(), 2);
        assert!(oracle.violations().is_empty());
    }

    #[test]
    fn debug_lists_invariant_names() {
        let oracle = OracleRegistry::standard(OracleConfig::default());
        let dbg = format!("{oracle:?}");
        assert!(dbg.contains("event-causality"));
        assert!(dbg.contains("fta-containment"));
    }
}
