//! The standard conformance invariants.
//!
//! Each checker is deliberately independent of the simulation crates it
//! judges: it re-derives the expected behaviour from first principles
//! (the paper's §II/§III algebra) so a bug in the implementation cannot
//! hide inside the oracle too.

use crate::{Invariant, Observation};
use std::collections::{BTreeMap, BTreeSet};
use tsn_metrics::{drift_offset, precision_bound, ViolationLog};
use tsn_time::{Nanos, Ppb, SimTime, SyncState};

/// Extra oscillator-rate allowance for `CLOCK_SYNCTIME` continuity on
/// top of the servo's frequency clamp (covers host/PHC oscillator
/// deviation, which the servo clamp does not include).
const OSC_MARGIN_PPB: f64 = 200_000.0;

/// Fixed slack for rounding in the continuity budget.
const CONTINUITY_MARGIN_NS: i64 = 1_000;

/// Event-queue causality: dispatch times never decrease (paper's
/// deterministic discrete-event model — an event handled before the
/// current time would rewrite history).
#[derive(Debug, Default)]
pub struct EventCausality {
    last: Option<SimTime>,
}

impl EventCausality {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for EventCausality {
    fn name(&self) -> &'static str {
        "event-causality"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        if let Observation::Event { at } = obs {
            if let Some(prev) = self.last {
                if *at < prev {
                    log.record(
                        *at,
                        self.name(),
                        "world.queue",
                        format!(
                            "event dispatched at t={}ns after t={}ns",
                            at.as_nanos(),
                            prev.as_nanos()
                        ),
                    );
                }
            }
            self.last = Some(self.last.map_or(*at, |p| p.max(*at)));
        }
    }
}

/// `CLOCK_SYNCTIME` monotonicity and continuity (paper §III-B): after
/// warm-up the virtual clock may never jump backwards by more than the
/// phc2sys step threshold, and between two readings it must advance at
/// most `step + (clamp + oscillator margin) · Δt` away from true time's
/// advance — takeovers included.
#[derive(Debug)]
pub struct SynctimeContinuity {
    warmup: SimTime,
    step: Nanos,
    slew_ppb: Ppb,
    last: Vec<Option<(SimTime, i64)>>,
}

impl SynctimeContinuity {
    /// Creates the checker. `step` is the phc2sys step threshold (20 µs
    /// in the paper) and `slew_ppb` the servo frequency clamp.
    pub fn new(warmup: SimTime, step: Nanos, slew_ppb: Ppb) -> Self {
        SynctimeContinuity {
            warmup,
            step,
            slew_ppb,
            last: Vec::new(),
        }
    }
}

impl Invariant for SynctimeContinuity {
    fn name(&self) -> &'static str {
        "synctime-continuity"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let Observation::Synctime {
            at,
            node,
            synctime_ns,
        } = obs
        else {
            return;
        };
        if *at < self.warmup {
            return; // the servo may legitimately step while converging
        }
        if self.last.len() <= *node {
            self.last.resize(*node + 1, None);
        }
        if let Some((t0, s0)) = self.last[*node] {
            let dt = at.as_nanos() as i64 - t0.as_nanos() as i64;
            let ds = *synctime_ns - s0;
            let back_allowance = self.step.as_nanos() + CONTINUITY_MARGIN_NS;
            let budget = back_allowance
                + ((dt as f64) * (self.slew_ppb + OSC_MARGIN_PPB) * 1e-9).ceil() as i64;
            if ds < -back_allowance {
                log.record(
                    *at,
                    "synctime-monotonic",
                    format!("node{node}.synctime"),
                    format!(
                        "clock jumped backwards by {}ns (> {}ns step allowance)",
                        -ds, back_allowance
                    ),
                );
            } else if (ds - dt).abs() > budget {
                log.record(
                    *at,
                    self.name(),
                    format!("node{node}.synctime"),
                    format!(
                        "clock advanced {ds}ns over {dt}ns of true time \
                         (|Δ|={}ns exceeds budget {}ns)",
                        (ds - dt).abs(),
                        budget
                    ),
                );
            }
        }
        self.last[*node] = Some((*at, *synctime_ns));
    }
}

/// Frame conservation across egress queues: every frame that enters a
/// NIC/switch egress queue is eventually popped or still resides in the
/// queue at the end of the run, and every popped frame is delivered onto
/// the wire or explicitly dropped (dead source VM).
#[derive(Debug, Default)]
pub struct FrameConservation {
    enqueued: u64,
    popped: u64,
    delivered_from_queue: u64,
    dropped_from_queue: u64,
    residual: Option<(SimTime, u64)>,
}

impl FrameConservation {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for FrameConservation {
    fn name(&self) -> &'static str {
        "frame-conservation"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let _ = log;
        match obs {
            Observation::FrameEnqueued { .. } => self.enqueued += 1,
            Observation::FramePopped { .. } => self.popped += 1,
            Observation::FrameDelivered {
                from_queue: true, ..
            } => self.delivered_from_queue += 1,
            Observation::FrameDropped {
                from_queue: true, ..
            } => self.dropped_from_queue += 1,
            Observation::RunEnd {
                at,
                residual_frames,
            } => self.residual = Some((*at, *residual_frames)),
            _ => {}
        }
    }

    fn finish(&mut self, log: &mut ViolationLog) {
        let Some((at, residual)) = self.residual else {
            // No RunEnd observation: nothing was queued, nothing to judge.
            if self.enqueued > 0 {
                log.record(
                    SimTime::ZERO,
                    self.name(),
                    "world.egress",
                    format!(
                        "{} frames enqueued but no end-of-run residual was reported",
                        self.enqueued
                    ),
                );
            }
            return;
        };
        if self.enqueued != self.popped + residual {
            log.record(
                at,
                self.name(),
                "world.egress",
                format!(
                    "enqueued={} != popped={} + residual={}",
                    self.enqueued, self.popped, residual
                ),
            );
        }
        if self.popped != self.delivered_from_queue + self.dropped_from_queue {
            log.record(
                at,
                self.name(),
                "world.egress",
                format!(
                    "popped={} != delivered={} + dropped={}",
                    self.popped, self.delivered_from_queue, self.dropped_from_queue
                ),
            );
        }
    }
}

/// Frame conservation across the multi-hop switch fabric: every
/// protected frame that enters the fabric is either forwarded end to
/// end or explicitly dropped at a saturated hop, and the per-crossing
/// tallies must match the end-of-run fabric counters. The fabric holds
/// no frames between events (traversal is computed analytically at
/// departure), so there is no fabric residual term.
#[derive(Debug, Default)]
pub struct FabricConservation {
    forwarded: u64,
    dropped: u64,
    totals: Option<(SimTime, u64, u64)>,
}

impl FabricConservation {
    /// Creates the checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for FabricConservation {
    fn name(&self) -> &'static str {
        "fabric-conservation"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let _ = log;
        match obs {
            Observation::FabricCrossing { dropped, .. } => {
                if *dropped {
                    self.dropped += 1;
                } else {
                    self.forwarded += 1;
                }
            }
            Observation::FabricTotals {
                at,
                forwarded,
                dropped,
            } => self.totals = Some((*at, *forwarded, *dropped)),
            _ => {}
        }
    }

    fn finish(&mut self, log: &mut ViolationLog) {
        let Some((at, forwarded, dropped)) = self.totals else {
            if self.forwarded + self.dropped > 0 {
                log.record(
                    SimTime::ZERO,
                    self.name(),
                    "world.fabric",
                    format!(
                        "{} fabric crossings observed but no end-of-run totals were reported",
                        self.forwarded + self.dropped
                    ),
                );
            }
            return;
        };
        if self.forwarded != forwarded {
            log.record(
                at,
                self.name(),
                "world.fabric",
                format!(
                    "observed forwarded={} != counter forwarded={}",
                    self.forwarded, forwarded
                ),
            );
        }
        if self.dropped != dropped {
            log.record(
                at,
                self.name(),
                "world.fabric",
                format!(
                    "observed dropped={} != counter dropped={}",
                    self.dropped, dropped
                ),
            );
        }
    }
}

/// FTA containment (paper §II, Kopetz–Ochsenreiter): whenever at most
/// `f` of the inputs come from Byzantine-marked domains, the
/// fault-tolerant aggregate must lie within the range of the honest
/// inputs (±1 ns for the round-half-away-from-zero average).
#[derive(Debug)]
pub struct FtaContainment {
    f: Option<usize>,
}

impl FtaContainment {
    /// Creates the checker; `f` is the trim degree of the active
    /// aggregation method (`None` disables the check for the Mean and
    /// Median ablations, which claim no Byzantine masking).
    pub fn new(f: Option<usize>) -> Self {
        FtaContainment { f }
    }
}

impl Invariant for FtaContainment {
    fn name(&self) -> &'static str {
        "fta-containment"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let Observation::Aggregated {
            at,
            node,
            offset,
            fault_tolerant,
            used,
            byzantine,
        } = obs
        else {
            return;
        };
        let Some(f) = self.f else { return };
        if !fault_tolerant || used.len() < 2 * f + 1 {
            // Startup mode follows a single domain; no containment claim.
            return;
        }
        let honest: Vec<Nanos> = used
            .iter()
            .filter(|(d, _)| !byzantine.get(*d).copied().unwrap_or(false))
            .map(|(_, o)| *o)
            .collect();
        let byz = used.len() - honest.len();
        if byz > f || honest.is_empty() {
            return; // more faults than the FTA masks — nothing is claimed
        }
        let lo = *honest.iter().min().expect("nonempty") - Nanos::from_nanos(1);
        let hi = *honest.iter().max().expect("nonempty") + Nanos::from_nanos(1);
        if *offset < lo || *offset > hi {
            log.record(
                *at,
                self.name(),
                format!("node{node}.aggregator"),
                format!(
                    "aggregate {}ns outside honest range [{}ns, {}ns] \
                     (f={f}, byzantine={byz}, inputs={:?})",
                    offset.as_nanos(),
                    lo.as_nanos() + 1,
                    hi.as_nanos() - 1,
                    used.iter()
                        .map(|(d, o)| (*d, o.as_nanos()))
                        .collect::<Vec<_>>()
                ),
            );
        }
    }
}

/// Servo clamp respect: no frequency correction may exceed the
/// configured clamp (paper: ±900 ppm, matching `phc2sys`).
#[derive(Debug)]
pub struct ServoClamp {
    max_ppb: Ppb,
}

impl ServoClamp {
    /// Creates the checker for a `±max_ppb` clamp.
    pub fn new(max_ppb: Ppb) -> Self {
        ServoClamp { max_ppb }
    }
}

impl Invariant for ServoClamp {
    fn name(&self) -> &'static str {
        "servo-clamp"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        if let Observation::ServoFrequency {
            at,
            node,
            slot,
            freq_adj_ppb,
        } = obs
        {
            if freq_adj_ppb.abs() > self.max_ppb + 0.5 {
                log.record(
                    *at,
                    self.name(),
                    format!("node{node}.vm{slot}.servo"),
                    format!(
                        "frequency correction {freq_adj_ppb} ppb exceeds clamp ±{} ppb",
                        self.max_ppb
                    ),
                );
            }
        }
    }
}

/// Bound-algebra consistency (paper §III-A3): the Π reported in run
/// artifacts must equal `u(N,f) · (E + Γ)` recomputed from the same
/// configuration, with `E = d_max − d_min` and `Γ = 2 · r_max · S`.
#[derive(Debug, Default)]
pub struct BoundAlgebra;

impl BoundAlgebra {
    /// Creates the checker.
    pub fn new() -> Self {
        BoundAlgebra
    }
}

impl Invariant for BoundAlgebra {
    fn name(&self) -> &'static str {
        "bound-algebra"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let Observation::Bounds {
            at,
            n,
            f,
            r_max_ppb,
            sync_interval,
            d_min,
            d_max,
            reading_error,
            drift_offset: gamma,
            pi,
        } = obs
        else {
            return;
        };
        let e = *d_max - *d_min;
        if e != *reading_error {
            log.record(
                *at,
                self.name(),
                "world.bounds",
                format!(
                    "reading error E={}ns but d_max−d_min={}ns",
                    reading_error.as_nanos(),
                    e.as_nanos()
                ),
            );
        }
        let expected_gamma = drift_offset(*r_max_ppb, *sync_interval);
        if expected_gamma != *gamma {
            log.record(
                *at,
                self.name(),
                "world.bounds",
                format!(
                    "drift offset Γ={}ns but 2·r_max·S={}ns",
                    gamma.as_nanos(),
                    expected_gamma.as_nanos()
                ),
            );
        }
        let expected_pi = precision_bound(*n, *f, e, expected_gamma);
        if expected_pi != *pi {
            log.record(
                *at,
                self.name(),
                "world.bounds",
                format!(
                    "Π={}ns but u({n},{f})·(E+Γ)={}ns",
                    pi.as_nanos(),
                    expected_pi.as_nanos()
                ),
            );
        }
    }
}

/// Degradation-machine legality: every emitted transition must be a
/// defined edge of the `SyncState` machine (Synchronized → Holdover,
/// Holdover → Freerun, Holdover/Freerun → Synchronized). A VM restart
/// resets the machine *silently*, so observed transitions need not chain
/// onto each other — but each individual edge must be legal.
#[derive(Debug, Default)]
pub struct SyncStateLegality;

impl SyncStateLegality {
    /// Creates the checker.
    pub fn new() -> Self {
        SyncStateLegality
    }
}

impl Invariant for SyncStateLegality {
    fn name(&self) -> &'static str {
        "sync-state-legality"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let Observation::SyncTransition {
            at,
            node,
            slot,
            from,
            to,
        } = obs
        else {
            return;
        };
        if !from.can_transition_to(*to) {
            log.record(
                *at,
                self.name(),
                format!("node{node}.vm{slot}.aggregator"),
                format!("illegal degradation edge {from} -> {to}"),
            );
        }
    }
}

/// Bounded coasting (holdover drift): while every aggregator of a node
/// that has ever reported a transition sits in Holdover, the node's
/// `CLOCK_SYNCTIME` holds the last PI frequency estimate — so over the
/// *whole* holdover span its advance may deviate from true time by at
/// most one step allowance plus `(clamp + oscillator margin) · Δt`.
/// Unlike [`SynctimeContinuity`] (which re-grants the step allowance on
/// every reading pair), this budget is cumulative from holdover entry.
/// Freerun claims nothing.
#[derive(Debug)]
pub struct HoldoverDrift {
    warmup: SimTime,
    step: Nanos,
    slew_ppb: Ppb,
    /// Last reported state per `(node, slot)`.
    states: BTreeMap<(usize, usize), SyncState>,
    /// Per node: first synctime reading observed while coasting.
    baseline: BTreeMap<usize, (SimTime, i64)>,
}

impl HoldoverDrift {
    /// Creates the checker. `step` is the phc2sys step threshold and
    /// `slew_ppb` the servo frequency clamp.
    pub fn new(warmup: SimTime, step: Nanos, slew_ppb: Ppb) -> Self {
        HoldoverDrift {
            warmup,
            step,
            slew_ppb,
            states: BTreeMap::new(),
            baseline: BTreeMap::new(),
        }
    }

    /// `true` while every tracked slot of `node` is in Holdover (and at
    /// least one is tracked).
    fn coasting(&self, node: usize) -> bool {
        let mut any = false;
        for ((n, _), s) in &self.states {
            if *n == node {
                if *s != SyncState::Holdover {
                    return false;
                }
                any = true;
            }
        }
        any
    }
}

impl Invariant for HoldoverDrift {
    fn name(&self) -> &'static str {
        "holdover-drift"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        match obs {
            Observation::SyncTransition { node, slot, to, .. } => {
                self.states.insert((*node, *slot), *to);
                if !self.coasting(*node) {
                    self.baseline.remove(node);
                }
            }
            Observation::Synctime {
                at,
                node,
                synctime_ns,
            } => {
                if *at < self.warmup || !self.coasting(*node) {
                    return;
                }
                let Some((t0, s0)) = self.baseline.get(node).copied() else {
                    self.baseline.insert(*node, (*at, *synctime_ns));
                    return;
                };
                let dt = at.as_nanos() as i64 - t0.as_nanos() as i64;
                let ds = *synctime_ns - s0;
                let budget = self.step.as_nanos()
                    + CONTINUITY_MARGIN_NS
                    + ((dt as f64) * (self.slew_ppb + OSC_MARGIN_PPB) * 1e-9).ceil() as i64;
                if (ds - dt).abs() > budget {
                    log.record(
                        *at,
                        self.name(),
                        format!("node{node}.synctime"),
                        format!(
                            "holdover drift {}ns over {dt}ns of coasting \
                             exceeds budget {budget}ns",
                            (ds - dt).abs()
                        ),
                    );
                    // Re-anchor so one runaway reading yields one record,
                    // not one per subsequent reading.
                    self.baseline.insert(*node, (*at, *synctime_ns));
                }
            }
            _ => {}
        }
    }
}

/// Election safety: at most one acting grandmaster per domain, modulo a
/// bounded hand-over window. BMCA role transitions are not atomic — the
/// old master keeps announcing until it hears a better vector — so two
/// acting masters may legitimately overlap, but only for at most the
/// configured convergence bound. A persistent dual-master split means
/// the election diverged.
#[derive(Debug)]
pub struct AtMostOneActingMaster {
    bound: Nanos,
    /// Current acting masters per domain.
    acting: BTreeMap<usize, BTreeSet<usize>>,
    /// When a domain first entered a multi-master overlap.
    overlap_since: BTreeMap<usize, SimTime>,
    /// Domains already reported (one record per overlap episode).
    flagged: BTreeSet<usize>,
    last_at: Option<SimTime>,
}

impl AtMostOneActingMaster {
    /// Creates the checker; `bound` is the allowed hand-over overlap.
    pub fn new(bound: Nanos) -> Self {
        AtMostOneActingMaster {
            bound,
            acting: BTreeMap::new(),
            overlap_since: BTreeMap::new(),
            flagged: BTreeSet::new(),
            last_at: None,
        }
    }

    fn judge(&mut self, now: SimTime, log: &mut ViolationLog) {
        for (domain, since) in &self.overlap_since {
            let held = now.as_nanos() as i64 - since.as_nanos() as i64;
            if held > self.bound.as_nanos() && self.flagged.insert(*domain) {
                let nodes: Vec<usize> = self
                    .acting
                    .get(domain)
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect();
                log.record(
                    now,
                    self.name(),
                    format!("domain{domain}.election"),
                    format!(
                        "nodes {nodes:?} all acting as grandmaster for {held}ns \
                         (> {}ns convergence bound)",
                        self.bound.as_nanos()
                    ),
                );
            }
        }
    }
}

impl Invariant for AtMostOneActingMaster {
    fn name(&self) -> &'static str {
        "election-at-most-one-master"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        let at = match obs {
            Observation::ElectionActing {
                at,
                domain,
                node,
                acting,
            } => {
                let set = self.acting.entry(*domain).or_default();
                if *acting {
                    set.insert(*node);
                } else {
                    set.remove(node);
                }
                if set.len() > 1 {
                    self.overlap_since.entry(*domain).or_insert(*at);
                } else {
                    self.overlap_since.remove(domain);
                    self.flagged.remove(domain);
                }
                *at
            }
            Observation::GmKilled { at, .. } | Observation::RunEnd { at, .. } => *at,
            _ => return,
        };
        self.last_at = Some(self.last_at.map_or(at, |p| p.max(at)));
        self.judge(at, log);
    }

    fn finish(&mut self, log: &mut ViolationLog) {
        if let Some(at) = self.last_at {
            self.judge(at, log);
        }
    }
}

/// Election liveness: after the scenario kills a domain's acting
/// grandmaster, a replacement must start acting within the configured
/// convergence bound (announce-receipt timeout plus BMCA settling).
#[derive(Debug)]
pub struct ElectionConvergence {
    bound: Nanos,
    /// Unresolved kills: domain → kill time.
    pending: BTreeMap<usize, SimTime>,
    end: Option<SimTime>,
}

impl ElectionConvergence {
    /// Creates the checker; `bound` is the re-election deadline.
    pub fn new(bound: Nanos) -> Self {
        ElectionConvergence {
            bound,
            pending: BTreeMap::new(),
            end: None,
        }
    }
}

impl Invariant for ElectionConvergence {
    fn name(&self) -> &'static str {
        "election-convergence"
    }

    fn observe(&mut self, obs: &Observation<'_>, log: &mut ViolationLog) {
        match obs {
            Observation::GmKilled { at, domain } => {
                self.pending.entry(*domain).or_insert(*at);
            }
            Observation::ElectionActing {
                at,
                domain,
                acting: true,
                ..
            } => {
                if let Some(killed) = self.pending.remove(domain) {
                    let took = at.as_nanos() as i64 - killed.as_nanos() as i64;
                    if took > self.bound.as_nanos() {
                        log.record(
                            *at,
                            self.name(),
                            format!("domain{domain}.election"),
                            format!(
                                "re-election took {took}ns after grandmaster kill \
                                 (> {}ns convergence bound)",
                                self.bound.as_nanos()
                            ),
                        );
                    }
                }
            }
            Observation::RunEnd { at, .. } => self.end = Some(*at),
            _ => {}
        }
    }

    fn finish(&mut self, log: &mut ViolationLog) {
        let Some(end) = self.end else { return };
        for (domain, killed) in &self.pending {
            let waited = end.as_nanos() as i64 - killed.as_nanos() as i64;
            if waited > self.bound.as_nanos() {
                log.record(
                    end,
                    self.name(),
                    format!("domain{domain}.election"),
                    format!(
                        "no replacement grandmaster acted within {waited}ns of the \
                         kill (> {}ns convergence bound)",
                        self.bound.as_nanos()
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleConfig, OracleRegistry};

    fn log() -> ViolationLog {
        ViolationLog::new()
    }

    #[test]
    fn causality_accepts_monotone_dispatch() {
        let mut inv = EventCausality::new();
        let mut l = log();
        for s in [1u64, 2, 2, 5] {
            inv.observe(
                &Observation::Event {
                    at: SimTime::from_secs(s),
                },
                &mut l,
            );
        }
        assert!(l.is_empty());
    }

    #[test]
    fn causality_flags_time_reversal() {
        let mut inv = EventCausality::new();
        let mut l = log();
        inv.observe(
            &Observation::Event {
                at: SimTime::from_secs(3),
            },
            &mut l,
        );
        inv.observe(
            &Observation::Event {
                at: SimTime::from_secs(2),
            },
            &mut l,
        );
        assert_eq!(l.len(), 1);
        assert!(l.records()[0].witness.contains("after"));
    }

    fn synctime(at_ms: u64, node: usize, synctime_ns: i64) -> Observation<'static> {
        Observation::Synctime {
            at: SimTime::from_millis(at_ms),
            node,
            synctime_ns,
        }
    }

    #[test]
    fn synctime_accepts_disciplined_advance() {
        let mut inv = SynctimeContinuity::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        // 10 ms period, 500 ppm fast: well inside the budget.
        for i in 0..100i64 {
            let t = i * 10_000_000;
            inv.observe(&synctime((i as u64) * 10, 0, t + t / 2_000), &mut l);
        }
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn synctime_flags_forward_discontinuity() {
        let mut inv = SynctimeContinuity::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(&synctime(0, 2, 0), &mut l);
        // 10 ms later the clock claims to have advanced 10 ms + 50 µs.
        inv.observe(&synctime(10, 2, 10_050_000), &mut l);
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].invariant, "synctime-continuity");
        assert!(l.records()[0].component.contains("node2"));
    }

    #[test]
    fn synctime_flags_backward_jump() {
        let mut inv = SynctimeContinuity::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(&synctime(0, 0, 0), &mut l);
        inv.observe(&synctime(10, 0, -30_000), &mut l);
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].invariant, "synctime-monotonic");
    }

    #[test]
    fn synctime_ignores_warmup_convergence() {
        let mut inv =
            SynctimeContinuity::new(SimTime::from_secs(1), Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(&synctime(0, 0, 0), &mut l);
        inv.observe(&synctime(500, 0, 400_000_000), &mut l); // wild, but pre-warmup
        inv.observe(&synctime(1_000, 0, 1_000_000_000), &mut l);
        inv.observe(&synctime(1_010, 0, 1_010_001_000), &mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn conservation_accepts_balanced_books() {
        let mut inv = FrameConservation::new();
        let mut l = log();
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            inv.observe(&Observation::FrameEnqueued { at: t }, &mut l);
        }
        for _ in 0..2 {
            inv.observe(&Observation::FramePopped { at: t }, &mut l);
        }
        inv.observe(
            &Observation::FrameDelivered {
                at: t,
                from_queue: true,
            },
            &mut l,
        );
        inv.observe(
            &Observation::FrameDropped {
                at: t,
                from_queue: true,
            },
            &mut l,
        );
        // Direct (never-queued) departures don't enter the ledger.
        inv.observe(
            &Observation::FrameDelivered {
                at: t,
                from_queue: false,
            },
            &mut l,
        );
        inv.observe(
            &Observation::RunEnd {
                at: t,
                residual_frames: 1,
            },
            &mut l,
        );
        inv.finish(&mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn conservation_flags_lost_frames() {
        let mut inv = FrameConservation::new();
        let mut l = log();
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            inv.observe(&Observation::FrameEnqueued { at: t }, &mut l);
        }
        inv.observe(&Observation::FramePopped { at: t }, &mut l);
        inv.observe(
            &Observation::RunEnd {
                at: t,
                residual_frames: 0,
            },
            &mut l,
        );
        inv.finish(&mut l);
        // Two frames vanished from the queue, and the popped one was
        // neither delivered nor dropped.
        assert_eq!(l.len(), 2);
        assert!(l.records()[0].witness.contains("enqueued=3"));
    }

    fn aggregated<'a>(
        offset: i64,
        used: &'a [(usize, Nanos)],
        byzantine: &'a [bool],
    ) -> Observation<'a> {
        Observation::Aggregated {
            at: SimTime::from_secs(2),
            node: 1,
            offset: Nanos::from_nanos(offset),
            fault_tolerant: true,
            used,
            byzantine,
        }
    }

    #[test]
    fn containment_accepts_aggregate_in_honest_range() {
        let used = [
            (0, Nanos::from_nanos(100)),
            (1, Nanos::from_nanos(900_000)), // Byzantine outlier
            (2, Nanos::from_nanos(200)),
            (3, Nanos::from_nanos(300)),
        ];
        let byz = [false, true, false, false];
        let mut inv = FtaContainment::new(Some(1));
        let mut l = log();
        inv.observe(&aggregated(250, &used, &byz), &mut l);
        assert!(l.is_empty());
    }

    #[test]
    fn containment_flags_aggregate_outside_honest_range() {
        let used = [
            (0, Nanos::from_nanos(100)),
            (1, Nanos::from_nanos(900_000)),
            (2, Nanos::from_nanos(200)),
            (3, Nanos::from_nanos(300)),
        ];
        let byz = [false, true, false, false];
        let mut inv = FtaContainment::new(Some(1));
        let mut l = log();
        inv.observe(&aggregated(225_150, &used, &byz), &mut l);
        assert_eq!(l.len(), 1);
        let rec = &l.records()[0];
        assert_eq!(rec.invariant, "fta-containment");
        assert_eq!(rec.component, "node1.aggregator");
        assert!(rec.witness.contains("225150"));
        assert!(rec.witness.contains("[100ns, 300ns]"));
    }

    #[test]
    fn containment_claims_nothing_beyond_f_faults() {
        let used = [
            (0, Nanos::from_nanos(500_000)),
            (1, Nanos::from_nanos(900_000)),
            (2, Nanos::from_nanos(200)),
            (3, Nanos::from_nanos(300)),
        ];
        let byz = [true, true, false, false]; // 2 > f = 1
        let mut inv = FtaContainment::new(Some(1));
        let mut l = log();
        inv.observe(&aggregated(700_000, &used, &byz), &mut l);
        assert!(l.is_empty());
    }

    #[test]
    fn containment_skips_non_fault_tolerant_modes() {
        let used = [(0, Nanos::from_nanos(100)), (1, Nanos::from_nanos(200))];
        let byz = [false, false];
        let mut l = log();
        // Startup mode claims nothing.
        let mut inv = FtaContainment::new(Some(1));
        inv.observe(
            &Observation::Aggregated {
                at: SimTime::from_secs(1),
                node: 0,
                offset: Nanos::from_nanos(10_000),
                fault_tolerant: false,
                used: &used,
                byzantine: &byz,
            },
            &mut l,
        );
        // Mean/Median ablations claim nothing either.
        let mut ablation = FtaContainment::new(None);
        ablation.observe(&aggregated(10_000, &used, &byz), &mut l);
        assert!(l.is_empty());
    }

    #[test]
    fn clamp_accepts_corrections_inside_range() {
        let mut inv = ServoClamp::new(900_000.0);
        let mut l = log();
        inv.observe(
            &Observation::ServoFrequency {
                at: SimTime::from_secs(1),
                node: 0,
                slot: 1,
                freq_adj_ppb: -900_000.0,
            },
            &mut l,
        );
        assert!(l.is_empty());
    }

    #[test]
    fn clamp_flags_excessive_correction() {
        let mut inv = ServoClamp::new(900_000.0);
        let mut l = log();
        inv.observe(
            &Observation::ServoFrequency {
                at: SimTime::from_secs(1),
                node: 3,
                slot: 0,
                freq_adj_ppb: 905_000.0,
            },
            &mut l,
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].component, "node3.vm0.servo");
    }

    fn bounds_obs(pi_ns: i64) -> Observation<'static> {
        // The paper's experiment-1 numbers: E = 5068 ns, Γ = 1250 ns,
        // Π = 2(E + Γ) = 12636 ns.
        Observation::Bounds {
            at: SimTime::from_secs(60),
            n: 4,
            f: 1,
            r_max_ppb: 5_000.0,
            sync_interval: Nanos::from_millis(125),
            d_min: Nanos::from_nanos(4_120),
            d_max: Nanos::from_nanos(9_188),
            reading_error: Nanos::from_nanos(5_068),
            drift_offset: Nanos::from_nanos(1_250),
            pi: Nanos::from_nanos(pi_ns),
        }
    }

    #[test]
    fn bound_algebra_accepts_consistent_report() {
        let mut inv = BoundAlgebra::new();
        let mut l = log();
        inv.observe(&bounds_obs(12_636), &mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn bound_algebra_flags_tampered_pi() {
        let mut inv = BoundAlgebra::new();
        let mut l = log();
        inv.observe(&bounds_obs(12_000), &mut l);
        assert_eq!(l.len(), 1);
        assert!(l.records()[0].witness.contains("12636"));
    }

    fn transition(
        at_s: u64,
        node: usize,
        slot: usize,
        from: SyncState,
        to: SyncState,
    ) -> Observation<'static> {
        Observation::SyncTransition {
            at: SimTime::from_secs(at_s),
            node,
            slot,
            from,
            to,
        }
    }

    #[test]
    fn legality_accepts_machine_edges() {
        let mut inv = SyncStateLegality::new();
        let mut l = log();
        let s = SyncState::Synchronized;
        let h = SyncState::Holdover;
        let f = SyncState::Freerun;
        for (from, to) in [(s, h), (h, f), (h, s), (f, s)] {
            inv.observe(&transition(1, 0, 0, from, to), &mut l);
        }
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn legality_flags_undefined_edges() {
        let mut inv = SyncStateLegality::new();
        let mut l = log();
        // Synchronized may never jump straight to Freerun.
        inv.observe(
            &transition(2, 1, 0, SyncState::Synchronized, SyncState::Freerun),
            &mut l,
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].invariant, "sync-state-legality");
        assert!(l.records()[0].witness.contains("synchronized -> freerun"));
    }

    #[test]
    fn holdover_drift_accepts_coasting_within_budget() {
        let mut inv = HoldoverDrift::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(
            &transition(10, 0, 0, SyncState::Synchronized, SyncState::Holdover),
            &mut l,
        );
        // 100 µs of drift over 1 s is far inside (clamp + margin) · Δt.
        inv.observe(&synctime(10_000, 0, 10_000_000_000), &mut l);
        inv.observe(&synctime(11_000, 0, 11_000_100_000), &mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn holdover_drift_flags_runaway_coast() {
        let mut inv = HoldoverDrift::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(
            &transition(10, 0, 0, SyncState::Synchronized, SyncState::Holdover),
            &mut l,
        );
        inv.observe(&synctime(10_000, 0, 10_000_000_000), &mut l);
        // 5 ms of drift over 1 s: > 1.1 ms budget.
        inv.observe(&synctime(11_000, 0, 11_005_000_000), &mut l);
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].invariant, "holdover-drift");
        assert!(l.records()[0].component.contains("node0"));
    }

    #[test]
    fn holdover_drift_is_cumulative_across_readings() {
        let mut inv = HoldoverDrift::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(
            &transition(10, 0, 0, SyncState::Synchronized, SyncState::Holdover),
            &mut l,
        );
        // Each 10 ms step drifts 15 µs — below the per-pair step
        // allowance SynctimeContinuity grants, but after 100 steps the
        // cumulative 1.5 ms dwarfs the ~1.13 ms whole-span budget.
        let mut s = 10_000_000_000i64;
        for i in 0..=100i64 {
            inv.observe(&synctime(10_000 + 10 * i as u64, 0, s), &mut l);
            s += 10_000_000 + 15_000;
        }
        assert!(
            !l.is_empty(),
            "cumulative drift must eventually exceed the whole-span budget"
        );
    }

    #[test]
    fn holdover_drift_claims_nothing_when_any_slot_is_synchronized() {
        let mut inv = HoldoverDrift::new(SimTime::ZERO, Nanos::from_micros(20), 900_000.0);
        let mut l = log();
        inv.observe(
            &transition(10, 0, 0, SyncState::Synchronized, SyncState::Holdover),
            &mut l,
        );
        // The redundant VM re-acquired: the node is not coasting.
        inv.observe(
            &transition(10, 0, 1, SyncState::Holdover, SyncState::Synchronized),
            &mut l,
        );
        inv.observe(&synctime(10_000, 0, 10_000_000_000), &mut l);
        inv.observe(&synctime(11_000, 0, 11_050_000_000), &mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    /// A deliberately broken fault-tolerant average: it "forgets" to trim
    /// the f extreme values before averaging (the classic FTA
    /// implementation mutation).
    fn broken_fta_without_trim(values: &[Nanos]) -> Nanos {
        let sum: i64 = values.iter().map(|v| v.as_nanos()).sum();
        Nanos::from_nanos(sum / values.len() as i64)
    }

    /// A correct reference FTA (sort, trim f per side, average).
    fn reference_fta(values: &[Nanos], f: usize) -> Nanos {
        let mut v: Vec<i64> = values.iter().map(|v| v.as_nanos()).collect();
        v.sort_unstable();
        let kept = &v[f..v.len() - f];
        Nanos::from_nanos(kept.iter().sum::<i64>() / kept.len() as i64)
    }

    /// Mutation-style self-test: breaking the FTA trim must be caught by
    /// the containment invariant with a witness record, while the
    /// correct implementation passes.
    #[test]
    fn mutation_broken_fta_trim_is_flagged() {
        let used = [
            (0, Nanos::from_nanos(120)),
            (1, Nanos::from_nanos(1_000_000)), // Byzantine grand master
            (2, Nanos::from_nanos(-80)),
            (3, Nanos::from_nanos(260)),
        ];
        let byz = [false, true, false, false];
        let inputs: Vec<Nanos> = used.iter().map(|(_, o)| *o).collect();

        // The correct FTA masks the outlier and stays contained.
        let good = reference_fta(&inputs, 1);
        let mut inv = FtaContainment::new(Some(1));
        let mut l = log();
        inv.observe(&aggregated(good.as_nanos(), &used, &byz), &mut l);
        assert!(l.is_empty(), "correct FTA must pass: {:?}", l.records());

        // The trimless mutant is dragged a quarter of the way to the
        // attacker's offset — far outside the honest range.
        let bad = broken_fta_without_trim(&inputs);
        let mut oracle = OracleRegistry::standard(OracleConfig {
            f: Some(1),
            ..OracleConfig::default()
        });
        oracle.observe(&aggregated(bad.as_nanos(), &used, &byz));
        oracle.finish();
        assert_eq!(oracle.violations().len(), 1);
        let rec = &oracle.violations()[0];
        assert_eq!(rec.invariant, "fta-containment");
        assert!(
            rec.witness.contains(&bad.as_nanos().to_string()),
            "witness must carry the offending aggregate: {}",
            rec.witness
        );
        assert!(rec.witness.contains("byzantine=1"));
    }

    fn acting(at_ms: u64, domain: usize, node: usize, acting: bool) -> Observation<'static> {
        Observation::ElectionActing {
            at: SimTime::from_millis(at_ms),
            domain,
            node,
            acting,
        }
    }

    #[test]
    fn one_master_accepts_bounded_handover_overlap() {
        let mut inv = AtMostOneActingMaster::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(&acting(1_000, 0, 0, true), &mut l);
        // Node 1 promotes itself before node 0 stands down: a 500 ms
        // overlap, well inside the 2 s hand-over window.
        inv.observe(&acting(5_000, 0, 1, true), &mut l);
        inv.observe(&acting(5_500, 0, 0, false), &mut l);
        inv.finish(&mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn one_master_flags_persistent_split() {
        let mut inv = AtMostOneActingMaster::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(&acting(1_000, 2, 0, true), &mut l);
        inv.observe(&acting(5_000, 2, 3, true), &mut l);
        // Nothing resolves; the run ends 10 s later.
        inv.observe(
            &Observation::RunEnd {
                at: SimTime::from_secs(15),
                residual_frames: 0,
            },
            &mut l,
        );
        inv.finish(&mut l);
        assert_eq!(l.len(), 1);
        let rec = &l.records()[0];
        assert_eq!(rec.invariant, "election-at-most-one-master");
        assert_eq!(rec.component, "domain2.election");
        assert!(rec.witness.contains("[0, 3]"));
    }

    #[test]
    fn one_master_reports_each_split_episode_once() {
        let mut inv = AtMostOneActingMaster::new(Nanos::from_millis(1_000));
        let mut l = log();
        inv.observe(&acting(0, 0, 0, true), &mut l);
        inv.observe(&acting(100, 0, 1, true), &mut l);
        // Repeated late observations of the same split: one record.
        inv.observe(&acting(3_000, 0, 2, true), &mut l);
        inv.observe(&acting(4_000, 0, 2, false), &mut l);
        inv.finish(&mut l);
        assert_eq!(l.len(), 1, "{:?}", l.records());
    }

    #[test]
    fn convergence_accepts_timely_reelection() {
        let mut inv = ElectionConvergence::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(
            &Observation::GmKilled {
                at: SimTime::from_secs(10),
                domain: 0,
            },
            &mut l,
        );
        inv.observe(&acting(11_000, 0, 1, true), &mut l);
        inv.finish(&mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }

    #[test]
    fn convergence_flags_slow_reelection() {
        let mut inv = ElectionConvergence::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(
            &Observation::GmKilled {
                at: SimTime::from_secs(10),
                domain: 1,
            },
            &mut l,
        );
        inv.observe(&acting(14_000, 1, 2, true), &mut l);
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].invariant, "election-convergence");
        assert!(l.records()[0].witness.contains("re-election took"));
    }

    #[test]
    fn convergence_flags_domain_never_recovering() {
        let mut inv = ElectionConvergence::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(
            &Observation::GmKilled {
                at: SimTime::from_secs(10),
                domain: 3,
            },
            &mut l,
        );
        // A different domain recovering does not resolve domain 3.
        inv.observe(&acting(10_500, 2, 1, true), &mut l);
        inv.observe(
            &Observation::RunEnd {
                at: SimTime::from_secs(30),
                residual_frames: 0,
            },
            &mut l,
        );
        inv.finish(&mut l);
        assert_eq!(l.len(), 1);
        assert!(l.records()[0].witness.contains("no replacement"));
        assert_eq!(l.records()[0].component, "domain3.election");
    }

    #[test]
    fn convergence_claims_nothing_when_run_ends_inside_bound() {
        let mut inv = ElectionConvergence::new(Nanos::from_millis(2_000));
        let mut l = log();
        inv.observe(
            &Observation::GmKilled {
                at: SimTime::from_secs(10),
                domain: 0,
            },
            &mut l,
        );
        inv.observe(
            &Observation::RunEnd {
                at: SimTime::from_millis(11_000),
                residual_frames: 0,
            },
            &mut l,
        );
        inv.finish(&mut l);
        assert!(l.is_empty(), "{:?}", l.records());
    }
}
