//! # tsn-hyp
//!
//! Virtualization substrate for the `clocksync` reproduction of *IEEE
//! 802.1AS Multi-Domain Aggregation for Virtualized Distributed Real-Time
//! Systems* (DSN-S 2023): the ACRN-style fault-tolerant dependent clock.
//!
//! * [`StShmem`] / [`ClockParams`] — the `STSHMEM` shared page exporting
//!   the affine host-clock → `CLOCK_SYNCTIME` mapping to co-located VMs;
//! * [`Phc2Sys`] — the LinuxPTP `phc2sys` equivalent deriving those
//!   parameters from the NIC PHC;
//! * [`DependentClockDevice`] — per-ECD active/standby bookkeeping with
//!   the fail-silent freshness monitor and takeover interrupt;
//! * [`VotingMonitor`] — the fail-consistent (2f+1) voting detector for
//!   platforms with enough passthrough NICs.

//! # Example
//!
//! Fail-silent takeover in three lines of setup:
//!
//! ```
//! use tsn_hyp::{ClockParams, DependentClockDevice, MonitorConfig, VmId};
//! use tsn_time::ClockTime;
//!
//! let mut dev = DependentClockDevice::new(VmId(0), vec![VmId(1)], MonitorConfig::default());
//! dev.publish(VmId(0), ClockParams::identity(), ClockTime::ZERO);
//! // VM 0 dies; the next monitor tick promotes VM 1.
//! let takeover = dev
//!     .monitor_tick(ClockTime::from_nanos(125_000_000), |vm| vm != VmId(0))
//!     .unwrap();
//! assert_eq!(takeover.to, VmId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod phc2sys;
mod stshmem;

pub use monitor::{DependentClockDevice, MonitorConfig, Takeover, VotingMonitor};
pub use phc2sys::{Phc2Sys, SyncClockDiscipline, SyncTimeServo};
pub use stshmem::{ClockParams, StShmem, VmId};
