//! `phc2sys` equivalent: deriving `CLOCK_SYNCTIME` parameters.
//!
//! LinuxPTP's `phc2sys` synchronizes a system clock to the NIC's PHC. In
//! the paper's architecture the active clock-synchronization VM runs it to
//! derive the dependent clock's parameters and "update the STSHMEM of the
//! dependent clock". Our engine samples `(host clock, PHC)` pairs at a
//! fixed period and produces the affine [`ClockParams`] mapping, with an
//! EMA-filtered rate estimate.

use crate::stshmem::ClockParams;
use tsn_time::ClockTime;

/// Default EMA weight for the rate estimate.
const RATE_FILTER_WEIGHT: f64 = 0.2;
/// Rate estimates outside ±1000 ppm are discarded as sampling glitches.
const RATE_SANITY: f64 = 1e-3;

/// Parameter-derivation engine (one per clock-synchronization VM).
#[derive(Debug, Clone)]
pub struct Phc2Sys {
    last: Option<(ClockTime, ClockTime)>,
    rate: f64,
}

impl Default for Phc2Sys {
    fn default() -> Self {
        Self::new()
    }
}

impl Phc2Sys {
    /// Creates an engine with a unity rate prior.
    pub fn new() -> Self {
        Phc2Sys {
            last: None,
            rate: 1.0,
        }
    }

    /// Current rate estimate (synchronized ns per host ns).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Feeds one simultaneous sample of the host clock and the
    /// synchronized (PHC) clock; returns updated parameters.
    pub fn sample(&mut self, host: ClockTime, sync: ClockTime) -> ClockParams {
        if let Some((ph, ps)) = self.last {
            let dh = (host - ph).as_nanos() as f64;
            let ds = (sync - ps).as_nanos() as f64;
            if dh > 0.0 {
                let raw = ds / dh;
                if (raw - 1.0).abs() < RATE_SANITY {
                    self.rate += RATE_FILTER_WEIGHT * (raw - self.rate);
                }
            }
        }
        self.last = Some((host, sync));
        ClockParams {
            base_host: host,
            base_sync: sync,
            rate: self.rate,
        }
    }

    /// Forgets sampling history (VM restart).
    pub fn reset(&mut self) {
        self.last = None;
        self.rate = 1.0;
    }
}

/// How the dependent clock tracks the PHC.
///
/// The paper's prototype disciplines `CLOCK_SYNCTIME` with feedback
/// control (LinuxPTP `phc2sys` + kernel clock), and §III-C attributes the
/// frequent precision spikes to exactly that ("we cannot rule out that
/// measured precision's instability stems from the feedback-based
/// operation of the clocks"), pointing to feed-forward clocks (RADclock)
/// as the fix. Both are implemented so the ablation can quantify the
/// difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SyncClockDiscipline {
    /// Affine parameter snapshots ([`Phc2Sys`]): no feedback loop.
    FeedForward,
    /// PI feedback slewing the shared clock parameters
    /// ([`SyncTimeServo`]), like `phc2sys` + the kernel clock.
    Feedback,
}

/// Feedback (`phc2sys`-style) discipline of `CLOCK_SYNCTIME`.
///
/// Each tick reads the dependent clock's *current* value from the shared
/// parameters, compares it with the PHC, and slews the mapping's rate
/// with a PI controller. Takeovers and PHC steps therefore produce the
/// transient over/undershoot the paper observed.
#[derive(Debug, Clone)]
pub struct SyncTimeServo {
    servo: tsn_time::PiServo,
    rate: f64,
}

impl SyncTimeServo {
    /// Creates a feedback servo for the given update period.
    pub fn new(config: tsn_time::ServoConfig, period: tsn_time::Nanos) -> Self {
        SyncTimeServo {
            servo: tsn_time::PiServo::new(config, period),
            rate: 1.0,
        }
    }

    /// One feedback update: `current` is the shared page's parameters,
    /// `host_now`/`phc_now` the simultaneous clock readings. Returns the
    /// new parameters to publish.
    pub fn sample(
        &mut self,
        current: &ClockParams,
        host_now: ClockTime,
        phc_now: ClockTime,
    ) -> ClockParams {
        let sync_now = current.synctime(host_now);
        let offset = sync_now - phc_now;
        let mut base_sync = sync_now;
        match self.servo.sample(offset, host_now) {
            tsn_time::ServoOutput::Gathering => {
                // Warm start: while gathering (first sample after a
                // takeover), inherit the rate already in the shared page
                // rather than free-running at 1.0 — otherwise the
                // transient scales with the ensemble's common-mode
                // frequency.
                self.rate = current.rate;
            }
            tsn_time::ServoOutput::Step {
                delta,
                freq_adj_ppb,
            } => {
                base_sync = base_sync + delta;
                self.rate = 1.0 + freq_adj_ppb * 1e-9;
            }
            tsn_time::ServoOutput::Adjust { freq_adj_ppb } => {
                self.rate = 1.0 + freq_adj_ppb * 1e-9;
            }
        }
        ClockParams {
            base_host: host_now,
            base_sync,
            rate: self.rate,
        }
    }

    /// Forgets servo state (VM restart).
    pub fn reset(&mut self) {
        self.servo.reset();
        self.rate = 1.0;
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for Phc2Sys {
    fn save_state(&self, w: &mut Writer) {
        self.last.put(w);
        self.rate.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.last = Snap::get(r)?;
        self.rate = Snap::get(r)?;
        Ok(())
    }
}

impl SnapState for SyncTimeServo {
    fn save_state(&self, w: &mut Writer) {
        self.servo.save_state(w);
        self.rate.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.servo.load_state(r)?;
        self.rate = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_time::Nanos;

    #[test]
    fn first_sample_uses_unity_rate() {
        let mut p = Phc2Sys::new();
        let params = p.sample(ClockTime::from_nanos(100), ClockTime::from_nanos(500));
        assert_eq!(params.rate, 1.0);
        assert_eq!(params.base_host, ClockTime::from_nanos(100));
        assert_eq!(params.base_sync, ClockTime::from_nanos(500));
    }

    #[test]
    fn rate_converges_to_true_ratio() {
        let mut p = Phc2Sys::new();
        // PHC runs +20 ppm relative to host.
        let ratio = 1.0 + 20e-6;
        for i in 0..200i64 {
            let host = ClockTime::from_nanos(i * 125_000_000);
            let sync = ClockTime::from_nanos(((i * 125_000_000) as f64 * ratio) as i64);
            p.sample(host, sync);
        }
        assert!(
            ((p.rate() - 1.0) * 1e6 - 20.0).abs() < 0.5,
            "rate {} ppm",
            (p.rate() - 1.0) * 1e6
        );
    }

    #[test]
    fn params_extrapolate_between_updates() {
        let mut p = Phc2Sys::new();
        p.sample(ClockTime::ZERO, ClockTime::ZERO);
        let params = p.sample(
            ClockTime::from_nanos(1_000_000_000),
            ClockTime::from_nanos(1_000_000_100),
        );
        // 1 s later the mapping should gain roughly another 100 ns ·
        // filter weight (EMA has only partially adopted the rate).
        let sync = params.synctime(ClockTime::from_nanos(2_000_000_000));
        let gained = sync - ClockTime::from_nanos(2_000_000_100);
        assert!(gained.abs() < Nanos::from_nanos(100), "gained {gained}");
    }

    #[test]
    fn glitch_samples_rejected() {
        let mut p = Phc2Sys::new();
        p.sample(ClockTime::ZERO, ClockTime::ZERO);
        // A 10 ms step between samples 1 s apart (10 000 ppm) is a glitch
        // (e.g. a takeover step), not a rate.
        p.sample(
            ClockTime::from_nanos(1_000_000_000),
            ClockTime::from_nanos(1_010_000_000),
        );
        assert_eq!(p.rate(), 1.0);
    }

    #[test]
    fn feedback_servo_tracks_phc() {
        let mut servo =
            SyncTimeServo::new(tsn_time::ServoConfig::default(), Nanos::from_millis(125));
        let mut params = ClockParams::identity();
        // PHC runs +30 ppm vs host, with a 500 ns initial error.
        let ratio = 1.0 + 30e-6;
        let mut last_offset = 0i64;
        for i in 1..400i64 {
            let host = ClockTime::from_nanos(i * 125_000_000);
            let phc = ClockTime::from_nanos(((i * 125_000_000) as f64 * ratio) as i64 + 500);
            params = servo.sample(&params, host, phc);
            last_offset = (params.synctime(host) - phc).as_nanos();
        }
        assert!(last_offset.abs() < 20, "residual offset {last_offset}");
        assert!(((params.rate - 1.0) * 1e6 - 30.0).abs() < 0.5);
    }

    #[test]
    fn feedback_servo_overshoots_on_step() {
        // A sudden 5 µs PHC step (e.g. takeover to a differently-aligned
        // clock) produces a transient — the paper's spike signature.
        let mut servo =
            SyncTimeServo::new(tsn_time::ServoConfig::default(), Nanos::from_millis(125));
        let mut params = ClockParams::identity();
        for i in 1..100i64 {
            let host = ClockTime::from_nanos(i * 125_000_000);
            params = servo.sample(&params, host, host);
        }
        // Step the reference.
        let mut max_rate_excursion: f64 = 0.0;
        for i in 100..140i64 {
            let host = ClockTime::from_nanos(i * 125_000_000);
            let phc = host + Nanos::from_micros(5);
            params = servo.sample(&params, host, phc);
            max_rate_excursion = max_rate_excursion.max((params.rate - 1.0).abs());
        }
        assert!(
            max_rate_excursion > 10e-6,
            "no transient: {max_rate_excursion}"
        );
    }

    #[test]
    fn reset_clears_history() {
        let mut p = Phc2Sys::new();
        p.sample(ClockTime::ZERO, ClockTime::ZERO);
        p.reset();
        assert_eq!(p.rate(), 1.0);
        let params = p.sample(ClockTime::from_nanos(5), ClockTime::from_nanos(5));
        assert_eq!(params.rate, 1.0);
    }
}
