//! The hypervisor-native monitor and the dependent-clock device.
//!
//! Paper §II-A: "we extend the dependent clock by introducing a
//! periodically executing monitor in ACRN implementing a voting algorithm
//! to detect clock synchronization VMs providing faulty clock parameters.
//! If the monitor detects a faulty clock synchronization VM, the STSHMEM
//! virtual PCI device injects an interrupt into the redundant clock
//! synchronization VM that is about to take over maintaining the
//! synchronized time."
//!
//! Because the paper's hardware offers only two passthrough NICs per ECD,
//! the experiments assume *fail-silent* clock-sync VMs (`f + 1 = 2`
//! redundancy); with three or more VMs the *fail-consistent* voting
//! monitor (`2f + 1` redundancy) applies. Both are implemented here:
//! [`DependentClockDevice`] performs fail-silent freshness detection and
//! takeover; [`VotingMonitor`] implements the majority-vote detector.

use crate::stshmem::{ClockParams, StShmem, VmId};
use serde::{Deserialize, Serialize};
use tsn_time::{ClockTime, Nanos};

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Monitor task period (125 ms in the paper).
    pub period: Nanos,
    /// STSHMEM updates older than this mark the active VM fail-silent.
    pub freshness_timeout: Nanos,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            period: Nanos::from_millis(125),
            freshness_timeout: Nanos::from_millis(500),
        }
    }
}

/// A takeover decision: inject an interrupt into `to`, which becomes the
/// active maintainer of `CLOCK_SYNCTIME`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Takeover {
    /// The VM that failed (or was voted faulty).
    pub from: VmId,
    /// The standby VM taking over.
    pub to: VmId,
}

/// The per-ECD dependent-clock device: STSHMEM plus active/standby
/// bookkeeping and the fail-silent monitor.
#[derive(Debug, Clone)]
pub struct DependentClockDevice {
    stshmem: StShmem,
    active: VmId,
    standbys: Vec<VmId>,
    config: MonitorConfig,
    /// Completed takeovers (diagnostic).
    pub takeovers: u64,
    /// Monitor ticks that found the active VM failed with no standby
    /// available (the node free-runs on stale parameters).
    pub uncovered_failures: u64,
}

impl DependentClockDevice {
    /// Creates a device with the given active VM and standby order.
    pub fn new(active: VmId, standbys: Vec<VmId>, config: MonitorConfig) -> Self {
        DependentClockDevice {
            stshmem: StShmem::new(),
            active,
            standbys,
            config,
            takeovers: 0,
            uncovered_failures: 0,
        }
    }

    /// The currently active clock-synchronization VM.
    pub fn active(&self) -> VmId {
        self.active
    }

    /// The standby VMs, in promotion order.
    pub fn standbys(&self) -> &[VmId] {
        &self.standbys
    }

    /// The monitor configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Read access to the shared page (guests' `CLOCK_SYNCTIME`).
    pub fn stshmem(&self) -> &StShmem {
        &self.stshmem
    }

    /// A clock-sync VM publishes parameters. Only the active VM's writes
    /// reach the page (the virtual PCI device gates the mapping); returns
    /// whether the write was accepted.
    pub fn publish(&mut self, vm: VmId, params: ClockParams, host_now: ClockTime) -> bool {
        if vm != self.active {
            return false;
        }
        self.stshmem.write(vm, params, host_now);
        true
    }

    /// One monitor tick at host time `host_now`. `is_running` reports VM
    /// health as the hypervisor sees it (a fail-silent VM is simply
    /// down or has stopped updating).
    pub fn monitor_tick(
        &mut self,
        host_now: ClockTime,
        mut is_running: impl FnMut(VmId) -> bool,
    ) -> Option<Takeover> {
        // Freshness only applies once the active VM has published at
        // least once (otherwise a monitor tick during boot would trigger
        // a spurious takeover).
        let stale = self.stshmem.writer().is_some()
            && self.stshmem.age(host_now) > self.config.freshness_timeout;
        let active_dead = !is_running(self.active) || stale;
        if !active_dead {
            return None;
        }
        // Promote the first running standby.
        let Some(pos) = self.standbys.iter().position(|&vm| is_running(vm)) else {
            self.uncovered_failures += 1;
            return None;
        };
        let to = self.standbys.remove(pos);
        let from = std::mem::replace(&mut self.active, to);
        // The failed VM rejoins as the last standby once it reboots; we
        // keep it in the list so promotion order is deterministic.
        self.standbys.push(from);
        self.takeovers += 1;
        Some(Takeover { from, to })
    }

    /// Reads `CLOCK_SYNCTIME` at host reading `host_now`.
    pub fn synctime(&self, host_now: ClockTime) -> ClockTime {
        self.stshmem.synctime(host_now)
    }

    /// Forces a takeover away from the active VM (used by the voting
    /// monitor when the active maintainer is voted faulty rather than
    /// silent). Promotes the first standby for which `is_ok` holds.
    pub fn force_takeover(&mut self, mut is_ok: impl FnMut(VmId) -> bool) -> Option<Takeover> {
        let pos = self.standbys.iter().position(|&vm| is_ok(vm))?;
        let to = self.standbys.remove(pos);
        let from = std::mem::replace(&mut self.active, to);
        self.standbys.push(from);
        self.takeovers += 1;
        Some(Takeover { from, to })
    }
}

/// The fail-consistent voting monitor (requires `2f + 1` clock-sync VMs).
///
/// Every clock-sync VM publishes *candidate* parameters into a private
/// hypervisor slot; the monitor evaluates each candidate's synchronized
/// time at the current instant and votes: VMs whose candidate deviates
/// from the median by more than `threshold` (or whose slot is stale) are
/// faulty.
#[derive(Debug, Clone)]
pub struct VotingMonitor {
    threshold: Nanos,
    freshness_timeout: Nanos,
    slots: Vec<Option<(ClockParams, ClockTime)>>,
}

impl VotingMonitor {
    /// Creates a monitor for `vms` clock-sync VMs.
    pub fn new(vms: usize, threshold: Nanos, freshness_timeout: Nanos) -> Self {
        VotingMonitor {
            threshold,
            freshness_timeout,
            slots: vec![None; vms],
        }
    }

    /// VM `vm` publishes its candidate parameters.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn publish_candidate(&mut self, vm: VmId, params: ClockParams, host_now: ClockTime) {
        self.slots[vm.0] = Some((params, host_now));
    }

    /// Votes at host time `host_now`, returning a faulty flag per VM.
    /// With fewer than 3 live candidates no vote is possible and all
    /// live VMs are presumed correct.
    pub fn vote(&self, host_now: ClockTime) -> Vec<bool> {
        let readings: Vec<Option<i64>> = self
            .slots
            .iter()
            .map(|slot| {
                slot.and_then(|(params, updated)| {
                    if host_now - updated <= self.freshness_timeout {
                        Some(params.synctime(host_now).as_nanos())
                    } else {
                        None
                    }
                })
            })
            .collect();
        let mut live: Vec<i64> = readings.iter().flatten().copied().collect();
        if live.len() < 3 {
            return readings.iter().map(Option::is_none).collect();
        }
        live.sort_unstable();
        let median = live[live.len() / 2];
        readings
            .iter()
            .map(|r| match r {
                Some(v) => (v - median).abs() > self.threshold.as_nanos(),
                None => true,
            })
            .collect()
    }
}

#[cfg(test)]
mod force_tests {
    use super::*;

    #[test]
    fn force_takeover_picks_first_acceptable_standby() {
        let mut dev =
            DependentClockDevice::new(VmId(0), vec![VmId(1), VmId(2)], MonitorConfig::default());
        // VM 1 is also faulty: promotion must skip it.
        let t = dev.force_takeover(|vm| vm == VmId(2)).unwrap();
        assert_eq!(
            t,
            Takeover {
                from: VmId(0),
                to: VmId(2)
            }
        );
        assert_eq!(dev.active(), VmId(2));
        assert_eq!(dev.standbys(), &[VmId(1), VmId(0)]);
    }

    #[test]
    fn force_takeover_without_candidates_is_none() {
        let mut dev = DependentClockDevice::new(VmId(0), vec![VmId(1)], MonitorConfig::default());
        assert!(dev.force_takeover(|_| false).is_none());
        assert_eq!(dev.active(), VmId(0));
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for DependentClockDevice {
    // `config` is static; active/standbys evolve through takeovers.
    fn save_state(&self, w: &mut Writer) {
        self.stshmem.save_state(w);
        self.active.put(w);
        self.standbys.put(w);
        self.takeovers.put(w);
        self.uncovered_failures.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.stshmem.load_state(r)?;
        self.active = Snap::get(r)?;
        self.standbys = Snap::get(r)?;
        self.takeovers = Snap::get(r)?;
        self.uncovered_failures = Snap::get(r)?;
        Ok(())
    }
}

impl SnapState for VotingMonitor {
    fn save_state(&self, w: &mut Writer) {
        self.slots.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let slots: Vec<Option<(ClockParams, ClockTime)>> = Snap::get(r)?;
        if slots.len() != self.slots.len() {
            return Err(SnapError::Malformed("voting monitor slot count"));
        }
        self.slots = slots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MonitorConfig {
        MonitorConfig::default()
    }

    fn params_at(offset_ns: i64) -> ClockParams {
        ClockParams {
            base_host: ClockTime::ZERO,
            base_sync: ClockTime::from_nanos(offset_ns),
            rate: 1.0,
        }
    }

    #[test]
    fn healthy_active_vm_keeps_role() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(0), ClockTime::from_nanos(0));
        let t = ClockTime::from_nanos(125_000_000);
        assert_eq!(dev.monitor_tick(t, |_| true), None);
        assert_eq!(dev.active(), VmId(1));
    }

    #[test]
    fn dead_active_vm_triggers_takeover() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(0), ClockTime::ZERO);
        let t = ClockTime::from_nanos(125_000_000);
        let takeover = dev.monitor_tick(t, |vm| vm != VmId(1)).unwrap();
        assert_eq!(
            takeover,
            Takeover {
                from: VmId(1),
                to: VmId(2)
            }
        );
        assert_eq!(dev.active(), VmId(2));
        assert_eq!(dev.takeovers, 1);
    }

    #[test]
    fn stale_params_count_as_fail_silent() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(0), ClockTime::ZERO);
        // The VM reports "running" but stopped updating (hung ptp4l).
        let t = ClockTime::from_nanos(600_000_000);
        let takeover = dev.monitor_tick(t, |_| true).unwrap();
        assert_eq!(takeover.to, VmId(2));
    }

    #[test]
    fn no_standby_counts_uncovered_failure() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(0), ClockTime::ZERO);
        let t = ClockTime::from_nanos(600_000_000);
        assert_eq!(dev.monitor_tick(t, |_| false), None);
        assert_eq!(dev.uncovered_failures, 1);
        assert_eq!(dev.active(), VmId(1), "role unchanged without standby");
    }

    #[test]
    fn failed_vm_rejoins_as_standby() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(0), ClockTime::ZERO);
        let t = ClockTime::from_nanos(600_000_000);
        dev.monitor_tick(t, |vm| vm != VmId(1)).unwrap();
        assert_eq!(dev.standbys(), &[VmId(1)]);
        // Later VM 2 dies and a rebooted VM 1 takes back over.
        dev.publish(VmId(2), params_at(0), t);
        let t2 = ClockTime::from_nanos(1_300_000_000);
        let takeover = dev.monitor_tick(t2, |vm| vm != VmId(2)).unwrap();
        assert_eq!(
            takeover,
            Takeover {
                from: VmId(2),
                to: VmId(1)
            }
        );
    }

    #[test]
    fn only_active_vm_writes_reach_the_page() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        assert!(dev.publish(VmId(1), params_at(100), ClockTime::ZERO));
        assert!(!dev.publish(VmId(2), params_at(999_999), ClockTime::ZERO));
        assert_eq!(dev.synctime(ClockTime::ZERO), ClockTime::from_nanos(100));
    }

    #[test]
    fn synctime_continuous_across_takeover() {
        let mut dev = DependentClockDevice::new(VmId(1), vec![VmId(2)], config());
        dev.publish(VmId(1), params_at(1_000), ClockTime::ZERO);
        let before = dev.synctime(ClockTime::from_nanos(600_000_000));
        dev.monitor_tick(ClockTime::from_nanos(600_000_000), |vm| vm != VmId(1))
            .unwrap();
        // Standby publishes nearly identical parameters (its PHC is
        // synchronized to the same fault-tolerant global time).
        dev.publish(
            VmId(2),
            ClockParams {
                base_host: ClockTime::from_nanos(600_000_000),
                base_sync: ClockTime::from_nanos(600_001_050),
                rate: 1.0,
            },
            ClockTime::from_nanos(600_000_000),
        );
        let after = dev.synctime(ClockTime::from_nanos(600_000_000));
        assert!((after - before).abs() <= Nanos::from_nanos(50));
    }

    #[test]
    fn voting_detects_byzantine_candidate() {
        let mut vm = VotingMonitor::new(3, Nanos::from_micros(10), Nanos::from_millis(500));
        let t = ClockTime::from_nanos(1_000_000);
        vm.publish_candidate(VmId(0), params_at(100), t);
        vm.publish_candidate(VmId(1), params_at(-24_000), t); // faulty
        vm.publish_candidate(VmId(2), params_at(200), t);
        assert_eq!(vm.vote(t), vec![false, true, false]);
    }

    #[test]
    fn voting_flags_stale_candidates() {
        let mut vm = VotingMonitor::new(3, Nanos::from_micros(10), Nanos::from_millis(500));
        vm.publish_candidate(VmId(0), params_at(0), ClockTime::ZERO);
        vm.publish_candidate(VmId(1), params_at(0), ClockTime::ZERO);
        vm.publish_candidate(VmId(2), params_at(0), ClockTime::ZERO);
        let late = ClockTime::from_nanos(10_000_000_000);
        assert_eq!(vm.vote(late), vec![true, true, true]);
    }

    #[test]
    fn voting_needs_three_live_candidates() {
        let mut vm = VotingMonitor::new(3, Nanos::from_micros(10), Nanos::from_millis(500));
        let t = ClockTime::from_nanos(1_000);
        vm.publish_candidate(VmId(0), params_at(0), t);
        vm.publish_candidate(VmId(1), params_at(50_000), t);
        // Two live candidates disagree: no majority exists; both presumed
        // correct (this is exactly why fail-silent needs only f+1 but
        // fail-consistent needs 2f+1).
        assert_eq!(vm.vote(t), vec![false, false, true]);
    }
}
