//! The `STSHMEM` synchronized-time shared memory (paper §II-A and [14]).
//!
//! The hypervisor exposes a shared-memory page to all co-located VMs via a
//! virtual PCI device. The active clock-synchronization VM's `phc2sys`
//! writes *clock parameters* — an affine mapping from the host's free
//! running clock to the synchronized time — and every guest derives the
//! POSIX clock `CLOCK_SYNCTIME` from them. Readers use a sequence lock so
//! a torn read is impossible (ACRN uses the MMU to give all VMs the same
//! view; the paper relies on this for fail-consistency).

use serde::{Deserialize, Serialize};
use tsn_time::{ClockTime, Nanos};

/// Identifies a VM on one ECD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub usize);

/// Affine clock parameters mapping the host clock to synchronized time:
/// `synctime(h) = base_sync + (h − base_host) · rate`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockParams {
    /// Host clock reading at the sample point.
    pub base_host: ClockTime,
    /// Synchronized time at the sample point.
    pub base_sync: ClockTime,
    /// Synchronized nanoseconds per host nanosecond.
    pub rate: f64,
}

impl ClockParams {
    /// Identity parameters (synctime ≡ host clock).
    pub fn identity() -> Self {
        ClockParams {
            base_host: ClockTime::ZERO,
            base_sync: ClockTime::ZERO,
            rate: 1.0,
        }
    }

    /// Evaluates `CLOCK_SYNCTIME` at host clock reading `host_now`.
    pub fn synctime(&self, host_now: ClockTime) -> ClockTime {
        let dt = (host_now - self.base_host).as_nanos() as f64;
        self.base_sync + Nanos::from_nanos((dt * self.rate).round() as i64)
    }
}

/// The shared page: current parameters plus writer bookkeeping the
/// hypervisor monitor uses for fail-silence detection.
#[derive(Debug, Clone)]
pub struct StShmem {
    params: ClockParams,
    seq: u64,
    writer: Option<VmId>,
    last_update_host: ClockTime,
}

impl Default for StShmem {
    fn default() -> Self {
        Self::new()
    }
}

impl StShmem {
    /// Creates a page with identity parameters and no writer.
    pub fn new() -> Self {
        StShmem {
            params: ClockParams::identity(),
            seq: 0,
            writer: None,
            last_update_host: ClockTime::from_nanos(i64::MIN / 2),
        }
    }

    /// Publishes new parameters from `writer` at host time `host_now`.
    pub fn write(&mut self, writer: VmId, params: ClockParams, host_now: ClockTime) {
        self.seq += 1; // odd: write in progress (modeled atomically)
        self.params = params;
        self.writer = Some(writer);
        self.last_update_host = host_now;
        self.seq += 1; // even: stable
    }

    /// The current parameters (a consistent snapshot).
    pub fn params(&self) -> ClockParams {
        self.params
    }

    /// Sequence counter (increments by 2 per write).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The VM that last wrote, if any.
    pub fn writer(&self) -> Option<VmId> {
        self.writer
    }

    /// Host time of the last update (the monitor's freshness reference).
    pub fn last_update_host(&self) -> ClockTime {
        self.last_update_host
    }

    /// Reads `CLOCK_SYNCTIME` at host reading `host_now` — what a guest's
    /// driver computes from the mapped page.
    pub fn synctime(&self, host_now: ClockTime) -> ClockTime {
        self.params.synctime(host_now)
    }

    /// Age of the parameters at `host_now`.
    pub fn age(&self, host_now: ClockTime) -> Nanos {
        host_now - self.last_update_host
    }

    /// Measures the synchronized-time duration between two host-clock
    /// readings — a RADclock-style *difference clock* (the paper's
    /// §III-C discussion): because only the rate enters, the result is
    /// immune to phase corrections (steps, takeovers) of the absolute
    /// `CLOCK_SYNCTIME` between the two reads.
    pub fn duration_between(&self, h1: ClockTime, h2: ClockTime) -> Nanos {
        let dt = (h2 - h1).as_nanos() as f64;
        Nanos::from_nanos((dt * self.params.rate).round() as i64)
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for VmId {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(VmId(Snap::get(r)?))
    }
}

impl Snap for ClockParams {
    fn put(&self, w: &mut Writer) {
        self.base_host.put(w);
        self.base_sync.put(w);
        self.rate.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ClockParams {
            base_host: Snap::get(r)?,
            base_sync: Snap::get(r)?,
            rate: Snap::get(r)?,
        })
    }
}

impl SnapState for StShmem {
    fn save_state(&self, w: &mut Writer) {
        self.params.put(w);
        self.seq.put(w);
        self.writer.put(w);
        self.last_update_host.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.params = Snap::get(r)?;
        self.seq = Snap::get(r)?;
        self.writer = Snap::get(r)?;
        self.last_update_host = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_params_track_host() {
        let shm = StShmem::new();
        let h = ClockTime::from_nanos(123_456);
        assert_eq!(shm.synctime(h), h);
    }

    #[test]
    fn affine_mapping_applied() {
        let params = ClockParams {
            base_host: ClockTime::from_nanos(1_000),
            base_sync: ClockTime::from_nanos(5_000),
            rate: 1.0 + 10e-6, // +10 ppm
        };
        // 1 ms after the base point.
        let sync = params.synctime(ClockTime::from_nanos(1_001_000));
        assert_eq!(sync.as_nanos(), 5_000 + 1_000_000 + 10);
    }

    #[test]
    fn write_updates_seq_and_writer() {
        let mut shm = StShmem::new();
        let params = ClockParams::identity();
        shm.write(VmId(1), params, ClockTime::from_nanos(10));
        assert_eq!(shm.seq(), 2);
        assert_eq!(shm.writer(), Some(VmId(1)));
        assert_eq!(shm.last_update_host(), ClockTime::from_nanos(10));
        shm.write(VmId(2), params, ClockTime::from_nanos(20));
        assert_eq!(shm.seq(), 4);
        assert_eq!(shm.writer(), Some(VmId(2)));
    }

    #[test]
    fn age_measures_staleness() {
        let mut shm = StShmem::new();
        shm.write(VmId(0), ClockParams::identity(), ClockTime::from_nanos(100));
        assert_eq!(shm.age(ClockTime::from_nanos(350)), Nanos::from_nanos(250));
    }

    #[test]
    fn difference_clock_ignores_phase_steps() {
        let mut shm = StShmem::new();
        shm.write(
            VmId(0),
            ClockParams {
                base_host: ClockTime::ZERO,
                base_sync: ClockTime::from_nanos(1_000_000),
                rate: 1.0 + 20e-6,
            },
            ClockTime::ZERO,
        );
        let h1 = ClockTime::from_nanos(1_000_000_000);
        // A takeover re-bases the absolute clock by 5 µs...
        shm.write(
            VmId(1),
            ClockParams {
                base_host: ClockTime::from_nanos(1_500_000_000),
                base_sync: ClockTime::from_nanos(1_501_005_000),
                rate: 1.0 + 20e-6,
            },
            ClockTime::from_nanos(1_500_000_000),
        );
        let h2 = ClockTime::from_nanos(2_000_000_000);
        // ...but the measured duration only uses the rate: 1 s · (1+20ppm).
        assert_eq!(
            shm.duration_between(h1, h2),
            Nanos::from_nanos(1_000_020_000)
        );
    }

    #[test]
    fn negative_rate_direction_handled() {
        // A slightly slow mapping still evaluates correctly backwards in
        // host time (reads before base are legal during takeover).
        let params = ClockParams {
            base_host: ClockTime::from_nanos(1_000_000),
            base_sync: ClockTime::from_nanos(1_000_000),
            rate: 0.999_999,
        };
        let sync = params.synctime(ClockTime::from_nanos(0));
        assert_eq!(sync.as_nanos(), 1); // rounding of -999999.0 + 1e6
    }
}
