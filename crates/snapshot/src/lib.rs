//! # tsn-snapshot
//!
//! Deterministic world checkpoint/restore for the `clocksync` testbed.
//!
//! The simulation core is single-threaded and fully deterministic, so
//! its complete state at any instant — event queue, RNG streams, clock
//! anchors and servo integrators, in-flight frames, protocol state
//! machines, shared-memory pages — can be captured as a byte string and
//! later restored bit-exactly. This crate provides the substrate:
//!
//! - a binary state codec ([`Writer`]/[`Reader`]) with strict
//!   determinism rules (see [`codec`]);
//! - the [`Snap`] trait for value types and the [`SnapState`] trait for
//!   stateful components, implemented across the `tsn-*` crates;
//! - the versioned [`WorldSnapshot`] envelope with a FNV-1a content
//!   hash over the encoded state.
//!
//! Restore is *reconstruct-then-overwrite*: the host rebuilds the full
//! object graph from configuration (`World::new`) and `load_state`
//! overwrites only the mutable fields. A snapshot therefore never
//! contains configuration — it carries a fingerprint of the producing
//! configuration so a restore into the wrong one is rejected early.
//!
//! On top of this substrate `tsn-campaign` implements fork-based
//! campaign execution (simulate a shared warm prefix once, fork each
//! run's divergent continuation) and the `snapshot` CLI implements
//! save/restore/verify/info, including divergence detection via
//! per-epoch state hashes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

pub use codec::{Reader, Snap, SnapError, SnapState, Writer};

use rand::rngs::StdRng;

/// File magic of the snapshot envelope (`TSNSNAP` + format generation).
pub const MAGIC: [u8; 8] = *b"TSNSNAP1";

/// Version of the envelope framing itself (not of the state schema,
/// which is [`WorldSnapshot::state_version`]).
pub const ENVELOPE_VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte string — the snapshot content hash.
///
/// Stable, dependency-free, and byte-order independent; collisions are
/// irrelevant here because the hash guards against corruption and
/// nondeterminism, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprint of a configuration's canonical textual rendering, used
/// to bind a snapshot to the configuration that produced it.
pub fn fingerprint_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// A checkpoint of the complete simulation state.
///
/// The payload is opaque to this crate: it is whatever the world's
/// `SnapState` tree encoded, pinned by `state_version`. The envelope
/// carries enough metadata to route and sanity-check a restore without
/// decoding the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSnapshot {
    /// Version of the encoded state schema (bumped whenever any
    /// `SnapState` implementation changes its layout).
    pub state_version: u32,
    /// Fingerprint of the configuration that produced the snapshot
    /// (the full configuration for plain checkpoints, the warm-prefix
    /// projection for fork-based campaign execution).
    pub config_fingerprint: u64,
    /// Simulation time of the checkpoint, in nanoseconds.
    pub at_ns: u64,
    /// Events processed before the checkpoint — what a forked
    /// continuation does *not* re-simulate.
    pub events_processed: u64,
    /// The encoded state.
    pub payload: Vec<u8>,
}

impl WorldSnapshot {
    /// The content hash over the encoded state. Two worlds with equal
    /// state hashes at equal times are byte-identical; the `snapshot
    /// verify` divergence check is built on this.
    pub fn state_hash(&self) -> u64 {
        fnv1a64(&self.payload)
    }

    /// Serializes the envelope: magic, body, FNV-1a hash of the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Writer::new();
        ENVELOPE_VERSION.put(&mut body);
        self.state_version.put(&mut body);
        self.config_fingerprint.put(&mut body);
        self.at_ns.put(&mut body);
        self.events_processed.put(&mut body);
        self.payload.put(&mut body);
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        out
    }

    /// Deserializes an envelope, verifying magic, framing version, and
    /// content hash.
    pub fn decode(bytes: &[u8]) -> Result<WorldSnapshot, SnapError> {
        if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let (body, tail) = bytes[MAGIC.len()..].split_at(bytes.len() - MAGIC.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let found = fnv1a64(body);
        if expected != found {
            return Err(SnapError::HashMismatch { expected, found });
        }
        let mut r = Reader::new(body);
        let envelope_version = u32::get(&mut r)?;
        if envelope_version != ENVELOPE_VERSION {
            return Err(SnapError::UnsupportedVersion(envelope_version));
        }
        let snap = WorldSnapshot {
            state_version: u32::get(&mut r)?,
            config_fingerprint: u64::get(&mut r)?,
            at_ns: u64::get(&mut r)?,
            events_processed: u64::get(&mut r)?,
            payload: Vec::<u8>::get(&mut r)?,
        };
        r.finish()?;
        Ok(snap)
    }
}

// `Snap` for the workspace RNG lives here (not in `vendor/rand`) so the
// vendored crate stays a pure reimplementation of the upstream API plus
// minimal state accessors.
impl Snap for StdRng {
    fn put(&self, w: &mut Writer) {
        self.state().put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let s = <[u64; 4]>::get(r)?;
        if s == [0; 4] {
            return Err(SnapError::Malformed("all-zero rng state"));
        }
        Ok(StdRng::from_state(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::get(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&(-1i64));
        roundtrip(&i128::MIN);
        roundtrip(&true);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&(-0.0f64));
        roundtrip(&String::from("snapshot"));
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&[1u64, 2, 3, 4]);
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        v.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(f64::get(&mut r).unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn hash_map_encoding_is_key_sorted() {
        let mut a = std::collections::HashMap::new();
        let mut b = std::collections::HashMap::new();
        for k in 0..64u64 {
            a.insert(k, k * 3);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 3);
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.put(&mut wa);
        b.put(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
        roundtrip(&a);
    }

    #[test]
    fn rng_stream_resumes_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        let _burn: u64 = rng.gen();
        let mut w = Writer::new();
        rng.put(&mut w);
        let bytes = w.into_bytes();
        let mut restored = StdRng::get(&mut Reader::new(&bytes)).unwrap();
        for _ in 0..16 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].put(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Vec::<u64>::get(&mut Reader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn envelope_rejects_corruption() {
        let snap = WorldSnapshot {
            state_version: 3,
            config_fingerprint: 0xABCD,
            at_ns: 30_000_000_000,
            events_processed: 12345,
            payload: vec![1, 2, 3, 4, 5],
        };
        let mut bytes = snap.encode();
        assert_eq!(WorldSnapshot::decode(&bytes).unwrap(), snap);
        // Flip one payload byte: the content hash must catch it.
        bytes[MAGIC.len() + 24] ^= 0x40;
        assert!(matches!(
            WorldSnapshot::decode(&bytes),
            Err(SnapError::HashMismatch { .. })
        ));
        // Break the magic.
        let mut bad = snap.encode();
        bad[0] = b'X';
        assert_eq!(WorldSnapshot::decode(&bad), Err(SnapError::BadMagic));
    }

    proptest! {
        #[test]
        fn snap_u64_roundtrip(v in any::<u64>()) {
            roundtrip(&v);
        }

        #[test]
        fn snap_f64_bits_roundtrip(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let mut w = Writer::new();
            v.put(&mut w);
            let back = f64::get(&mut Reader::new(&w.into_bytes())).unwrap();
            prop_assert_eq!(back.to_bits(), bits);
        }

        #[test]
        fn snap_vec_roundtrip(v in proptest::collection::vec(any::<i64>(), 0..64)) {
            roundtrip(&v);
        }

        #[test]
        fn envelope_roundtrip_and_hash_stable(
            state_version in any::<u32>(),
            fingerprint in any::<u64>(),
            at in any::<u64>(),
            processed in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let snap = WorldSnapshot {
                state_version,
                config_fingerprint: fingerprint,
                at_ns: at,
                events_processed: processed,
                payload,
            };
            let bytes = snap.encode();
            let back = WorldSnapshot::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &snap);
            // encode ∘ decode is the identity on bytes, and the content
            // hash is stable across the round trip.
            prop_assert_eq!(back.encode(), bytes);
            prop_assert_eq!(back.state_hash(), snap.state_hash());
        }
    }
}
