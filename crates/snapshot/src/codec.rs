//! The binary state codec: a little-endian, length-prefixed encoding
//! with no self-description. Both sides must agree on the schema, which
//! is what the envelope's state version pins.
//!
//! Determinism rules, so that equal state always encodes to equal
//! bytes:
//!
//! - integers are fixed-width little-endian (no varints);
//! - `f64` travels as its IEEE-754 bit pattern ([`f64::to_bits`]), so
//!   `-0.0`, subnormals, and NaN payloads round-trip exactly;
//! - unordered containers ([`HashMap`]) are encoded in ascending key
//!   order.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// Errors surfaced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the value did.
    UnexpectedEof {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The envelope version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The embedded content hash does not match the decoded bytes.
    HashMismatch {
        /// Hash stored in the envelope.
        expected: u64,
        /// Hash of the bytes actually read.
        found: u64,
    },
    /// A value failed a semantic check (bad discriminant, bad length…).
    Malformed(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, had {have}")
            }
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapError::HashMismatch { expected, found } => write!(
                f,
                "snapshot content hash mismatch: stored {expected:016x}, computed {found:016x}"
            ),
            SnapError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Accumulates the encoded byte stream.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over an encoded byte stream.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Asserts that the whole input was consumed (trailing garbage is a
    /// corruption signal, not padding).
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Malformed("trailing bytes after value"))
        }
    }
}

/// A value type that encodes to/decodes from the snapshot byte stream.
///
/// The contract is `decode ∘ encode = id` and byte-determinism: equal
/// values produce equal bytes.
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn put(&self, w: &mut Writer);
    /// Decodes one value from `r`.
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

/// A stateful component that can save its *mutable* state and later
/// load it back in place.
///
/// Unlike [`Snap`], implementations do not reconstruct themselves from
/// bytes: the host rebuilds the full object graph deterministically
/// from configuration (`World::new`) and `load_state` then overwrites
/// only the fields that evolve during a run. Static structure
/// (topology, configs, derived constants) is never serialized.
pub trait SnapState {
    /// Appends the mutable state to `w`.
    fn save_state(&self, w: &mut Writer);
    /// Overwrites the mutable state from `r`.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError>;
}

macro_rules! snap_int {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn put(&self, w: &mut Writer) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                let n = std::mem::size_of::<$t>();
                let bytes = r.take(n)?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

snap_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Snap for usize {
    fn put(&self, w: &mut Writer) {
        (*self as u64).put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let v = u64::get(r)?;
        usize::try_from(v).map_err(|_| SnapError::Malformed("usize overflow"))
    }
}

impl Snap for bool {
    fn put(&self, w: &mut Writer) {
        w.put_bytes(&[u8::from(*self)]);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool out of range")),
        }
    }
}

impl Snap for f64 {
    fn put(&self, w: &mut Writer) {
        self.to_bits().put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::get(r)?))
    }
}

impl Snap for String {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        w.put_bytes(self.as_bytes());
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::get(r)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed("invalid utf-8"))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn put(&self, w: &mut Writer) {
        match self {
            None => false.put(w),
            Some(v) => {
                true.put(w);
                v.put(w);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(if bool::get(r)? {
            Some(T::get(r)?)
        } else {
            None
        })
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for v in self {
            v.put(w);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::get(r)?;
        // Guard against a corrupt length faulting the allocator: no
        // element encodes to zero bytes, so `n` can't exceed what's left.
        if n > r.remaining() {
            return Err(SnapError::Malformed("collection length exceeds input"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::get(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for v in self {
            v.put(w);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::get(r)?.into())
    }
}

impl<K: Snap + Ord + Eq + Hash, V: Snap> Snap for HashMap<K, V> {
    fn put(&self, w: &mut Writer) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.len().put(w);
        for (k, v) in entries {
            k.put(w);
            v.put(w);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::get(r)?;
        if n > r.remaining() {
            return Err(SnapError::Malformed("collection length exceeds input"));
        }
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::get(r)?;
            let v = V::get(r)?;
            if out.insert(k, v).is_some() {
                return Err(SnapError::Malformed("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for (k, v) in self {
            k.put(w);
            v.put(w);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = usize::get(r)?;
        if n > r.remaining() {
            return Err(SnapError::Malformed("collection length exceeds input"));
        }
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::get(r)?;
            let v = V::get(r)?;
            if out.insert(k, v).is_some() {
                return Err(SnapError::Malformed("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
        self.2.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::get(r)?, B::get(r)?, C::get(r)?))
    }
}

impl<T: Snap + Default + Copy, const N: usize> Snap for [T; N] {
    fn put(&self, w: &mut Writer) {
        for v in self {
            v.put(w);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::get(r)?;
        }
        Ok(out)
    }
}
