//! The paper's cyber-resilience experiment (Fig. 3a/3b): an attacker
//! roots two virtual grandmasters via CVE-2018-18955 and replaces their
//! `ptp4l` with malicious instances shifting `preciseOriginTimestamp`
//! by −24 µs.
//!
//! * identical kernels → both exploits land → the FTA (f = 1) is
//!   overwhelmed after the second strike and the precision bound is
//!   violated;
//! * diverse kernels → the second exploit fails → the single Byzantine
//!   GM stays masked.
//!
//! ```sh
//! cargo run --release --example cyber_attack [minutes]
//! ```

use clocksync::scenario;
use clocksync::RunResult;
use tsn_time::{Nanos, SimTime};

fn summarize(label: &str, r: &RunResult) {
    println!("=== {label} ===");
    println!(
        "  strikes: {} succeeded, {} failed",
        r.counters.strikes_succeeded, r.counters.strikes_failed
    );
    for (t, e) in r.events.entries() {
        if matches!(e, tsn_metrics::ExperimentEvent::Strike { .. }) {
            let shifted = *t - r.warmup;
            println!("  {shifted} {e}");
        }
    }
    let bound = r.bounds.pi_plus_gamma();
    println!("  Π = {}  γ = {}", r.bounds.pi, r.bounds.gamma);
    // Minute-by-minute maxima around the strikes.
    for window_min in [20u64, 21, 22, 30, 31, 32, 35] {
        let from = SimTime::ZERO + r.warmup + Nanos::from_secs((window_min * 60) as i64);
        let w = r.series.window(from, from + Nanos::from_secs(60));
        if let Some(s) = w.stats() {
            let flag = if s.max > bound {
                "  << bound violated"
            } else {
                ""
            };
            println!(
                "  min {window_min:>2}: avg = {:>9.0} ns   max = {}{flag}",
                s.mean, s.max
            );
        }
    }
    println!(
        "  fraction of samples within Π + γ: {:.4}\n",
        r.series.fraction_within(bound)
    );
}

fn main() {
    let minutes: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);
    let duration = Nanos::from_secs((minutes * 60) as i64);

    let identical = scenario::cyber_identical_kernels(7, duration);
    summarize(
        "Fig. 3a — identical (exploitable) kernels on all GMs",
        &identical.result,
    );

    let diverse = scenario::cyber_diverse_kernels(7, duration);
    summarize(
        "Fig. 3b — diverse kernels (only GM c1_4 exploitable)",
        &diverse.result,
    );

    println!("Conclusion: OS diversification keeps the number of");
    println!("compromised GMs within the FTA's Byzantine tolerance (f = 1).");
}
