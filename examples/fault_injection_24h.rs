//! The paper's 24 h fault-injection experiment (Fig. 4/5): sequential
//! grandmaster shutdowns (one per hour, cycling through the ECDs) plus
//! random redundant clock-sync VM shutdowns, under the constraint that a
//! node never loses both of its clock-synchronization VMs at once.
//!
//! The full 24 h takes about a minute of wall-clock time in release
//! mode; pass a smaller hour count to go faster.
//!
//! ```sh
//! cargo run --release --example fault_injection_24h [hours]
//! ```

use clocksync::scenario;
use tsn_metrics::{render_histogram, render_series, ExperimentEvent, Histogram};
use tsn_time::Nanos;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let duration = Nanos::from_secs((hours * 3600) as i64);

    println!("running {hours} h fault-injection experiment…");
    let outcome = scenario::fault_injection(11, duration);
    let r = &outcome.result;

    println!("\nderived bounds:");
    println!(
        "  Π = {}   γ = {}   Π + γ = {}",
        r.bounds.pi,
        r.bounds.gamma,
        r.bounds.pi_plus_gamma()
    );

    let stats = r.series.stats().expect("probes collected");
    println!("\nmeasured precision (paper: avg 322 ± 421 ns, min 33 ns, max 10 080 ns):");
    println!(
        "  avg = {:.0} ns   std = {:.0} ns   min = {}   max = {}",
        stats.mean, stats.std, stats.min, stats.max
    );
    println!(
        "  fraction within Π + γ: {:.5}",
        r.series.fraction_within(r.bounds.pi_plus_gamma())
    );

    // Fig. 4a: 120 s aggregated series on a log scale.
    let windows = r.series.aggregate(Nanos::from_secs(120));
    println!("\nFig. 4a — precision over time (120 s windows):");
    println!(
        "{}",
        render_series(
            &windows,
            &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
            14,
            72
        )
    );

    // Fig. 4b: value distribution.
    let mut hist = Histogram::new(50, 20); // 0..1000 ns in 50 ns bins
    for s in r.series.samples() {
        hist.record(s.value);
    }
    println!("Fig. 4b — distribution of measured precision (50 ns bins):");
    println!("{}", render_histogram(&hist, 48));

    // Fault bookkeeping (paper: 94 fail-silent VMs, 48 GM; 2992 tx
    // timestamp timeouts; 347 deadline misses).
    println!("fault summary:");
    println!(
        "  fail-silent clock-sync VMs: {} ({} grandmasters)",
        r.counters.vm_failures, r.counters.gm_failures
    );
    println!("  CLOCK_SYNCTIME takeovers:  {}", r.counters.takeovers);
    println!(
        "  tx timestamp timeouts:     {}",
        r.counters.tx_timestamp_timeouts
    );
    println!(
        "  Sync deadline misses:      {}",
        r.counters.deadline_misses
    );
    let resumed = r
        .events
        .count(|e| matches!(e, ExperimentEvent::GmResumed { .. }));
    println!("  GM rejoins after reboot:   {resumed}");
}
