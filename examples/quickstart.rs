//! Quickstart: bring up the paper's 4-node testbed, run it for a minute,
//! and check the measured clock-synchronization precision against the
//! analytical bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clocksync::{scenario, TestbedConfig};
use tsn_metrics::{render_series, series_csv};
use tsn_time::Nanos;

fn main() {
    // The paper's testbed: 4 ECDs, each hosting the grandmaster of one
    // gPTP domain plus a redundant clock-synchronization VM, switches in
    // a mesh, S = 125 ms, FTA with f = 1.
    let mut cfg = TestbedConfig::paper_default(42);
    cfg.duration = Nanos::from_secs(120);

    println!(
        "building testbed: {} nodes, {} domains, S = {}",
        cfg.nodes, cfg.aggregation.domains, cfg.sync_interval
    );
    let outcome = scenario::baseline(cfg);
    let r = &outcome.result;

    println!("\nderived bounds (paper §III-A3):");
    println!("  d_min = {}   d_max = {}", r.bounds.d_min, r.bounds.d_max);
    println!("  reading error E = {}", r.bounds.reading_error);
    println!("  drift offset  Γ = {}", r.bounds.drift_offset);
    println!(
        "  precision bound Π = {}   measurement error γ = {}",
        r.bounds.pi, r.bounds.gamma
    );

    let stats = r.series.stats().expect("probes collected");
    println!(
        "\nmeasured precision Π* over {} s:",
        outcome.config.duration.as_secs_f64()
    );
    println!(
        "  avg = {:.0} ns   std = {:.0} ns   min = {}   max = {}",
        stats.mean, stats.std, stats.min, stats.max
    );
    println!(
        "  fraction within Π + γ: {:.4}",
        r.series.fraction_within(r.bounds.pi_plus_gamma())
    );

    let windows = r.series.aggregate(Nanos::from_secs(10));
    println!(
        "\n{}",
        render_series(
            &windows,
            &[("Pi", r.bounds.pi), ("Pi+gamma", r.bounds.pi_plus_gamma())],
            14,
            64
        )
    );

    // CSV for external plotting:
    let csv = series_csv(&windows);
    println!(
        "(series CSV: {} lines; write it wherever you like)",
        csv.lines().count()
    );
}
