//! A programmatic campaign: sweep clock discipline across seeds and
//! compare the two arms.
//!
//! ```sh
//! cargo run --release --example campaign_sweep
//! ```

use clocksync::scenario::ScenarioKind;
use tsn_campaign::{runner, summary, BaseSpec, CampaignSpec, Grid, RunnerOptions};
use tsn_hyp::SyncClockDiscipline;

fn main() {
    let spec = CampaignSpec {
        name: "example-discipline-sweep".to_string(),
        base: BaseSpec::quick(45),
        scenarios: vec![ScenarioKind::Baseline],
        grid: Grid {
            seeds: vec![1, 2, 3, 4],
            disciplines: vec![
                SyncClockDiscipline::Feedback,
                SyncClockDiscipline::FeedForward,
            ],
            ..Grid::default()
        },
    };
    let dir = std::path::PathBuf::from("target/campaigns").join(&spec.name);
    println!(
        "running {} ({} runs) into {} ...",
        spec.name,
        spec.total_runs(),
        dir.display()
    );
    let report = runner::execute(&spec, &RunnerOptions::new(dir)).expect("campaign runs");
    println!(
        "{} executed, {} resumed, {} thread(s)",
        report.executed, report.skipped, report.threads
    );
    let groups = summary::summarize(&report.records);
    print!("{}", summary::render(&groups));

    // The paper attributes its precision spikes to the feedback-based
    // clock discipline; the sweep quantifies the difference.
    let p95 = |d: SyncClockDiscipline| {
        groups
            .iter()
            .find(|g| g.key.discipline == Some(d))
            .and_then(|g| g.pi_star_p95.as_ref())
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    };
    println!(
        "cross-seed mean p95(Pi*): feedback {:.0} ns vs feed-forward {:.0} ns",
        p95(SyncClockDiscipline::Feedback),
        p95(SyncClockDiscipline::FeedForward)
    );
}
