//! Demonstrates the fault-tolerant dependent clock in isolation: the
//! hypervisor's 125 ms monitor detects a fail-silent clock-sync VM and
//! injects the takeover interrupt into the redundant VM, which continues
//! maintaining `CLOCK_SYNCTIME` without the node losing synchronization.
//!
//! Uses the `tsn-hyp` substrate API directly (no network), so it doubles
//! as a tour of the dependent-clock building blocks.
//!
//! ```sh
//! cargo run --release --example dependent_clock_takeover
//! ```

use tsn_hyp::{ClockParams, DependentClockDevice, MonitorConfig, VmId};
use tsn_time::{ClockTime, Nanos, Phc};

fn params_for(phc: &mut Phc, host: &mut Phc, t: tsn_time::SimTime) -> ClockParams {
    ClockParams {
        base_host: host.now(t),
        base_sync: phc.now(t),
        rate: 1.0,
    }
}

fn main() {
    // A host clock and two clock-sync VM PHCs, all slightly detuned.
    let mut host = Phc::new(ClockTime::ZERO, 2_000.0); // +2 ppm
    let mut phc_active = Phc::new(ClockTime::from_nanos(150), -3_000.0);
    let mut phc_standby = Phc::new(ClockTime::from_nanos(-90), 4_000.0);

    let mut dev = DependentClockDevice::new(VmId(0), vec![VmId(1)], MonitorConfig::default());

    let tick = Nanos::from_millis(125);
    let mut t = tsn_time::SimTime::ZERO;
    let mut vm0_alive = true;

    println!("{:>8}  {:>10}  {:>6}  event", "time", "synctime", "active");
    for step in 0..40u32 {
        t += tick;
        // Active VM publishes parameters while alive.
        if vm0_alive && dev.active() == VmId(0) {
            let p = params_for(&mut phc_active, &mut host, t);
            dev.publish(VmId(0), p, host.now(t));
        }
        if dev.active() == VmId(1) {
            let p = params_for(&mut phc_standby, &mut host, t);
            dev.publish(VmId(1), p, host.now(t));
        }
        // Kill the active VM at step 20 (fail-silent).
        let mut event = String::new();
        if step == 20 {
            vm0_alive = false;
            event = "<- clock-sync VM 0 fails silently".into();
        }
        // Hypervisor monitor tick.
        if let Some(tk) = dev.monitor_tick(host.now(t), |vm| vm != VmId(0) || vm0_alive) {
            event = format!("<- monitor takeover: VM {} -> VM {}", tk.from.0, tk.to.0);
        }
        let sync = dev.synctime(host.now(t));
        println!(
            "{:>7.3}s  {:>10}  vm{:>3}  {event}",
            t.as_secs_f64(),
            sync.as_nanos(),
            dev.active().0
        );
    }

    println!("\ntakeovers: {}", dev.takeovers);
    assert_eq!(dev.active(), VmId(1), "standby took over");
    // CLOCK_SYNCTIME stayed continuous within the clock-sync precision:
    // both PHCs were synchronized, so the jump at takeover is bounded by
    // their mutual offset (here a few hundred ns).
}
