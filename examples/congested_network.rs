//! Beyond the paper: the testbed under best-effort network congestion.
//!
//! Background traffic loads every egress port while gPTP keeps running.
//! Two different things could degrade, and the example separates them:
//!
//! * the **synchronization** (ground-truth spread of the NIC clocks) —
//!   stays in the hundreds of nanoseconds at any load, because two-step
//!   hardware timestamping measures every queuing delay a Sync actually
//!   experienced and the correction field carries it to the slave;
//! * the **measurement** (Π* from probe packets) — degrades with load,
//!   because probe arrival jitter lands directly in Eq. 3.1. This is the
//!   asymmetry the paper's measurement error γ formalizes, and why its
//!   methodology pins probe paths to a dedicated VLAN.
//!
//! ```sh
//! cargo run --release --example congested_network
//! ```

use clocksync::{BackgroundTraffic, TestbedConfig, World};
use tsn_time::Nanos;

fn main() {
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>12}",
        "variant", "true spread", "measured avg", "measured max", "queued"
    );
    for (label, load, priority) in [
        ("idle", 0.0, true),
        ("load 0.3, TSN priority", 0.3, true),
        ("load 0.6, TSN priority", 0.6, true),
        ("load 0.6, no priority", 0.6, false),
        ("load 0.9, TSN priority", 0.9, true),
    ] {
        let mut cfg = TestbedConfig::paper_default(5);
        cfg.duration = Nanos::from_secs(60);
        if load > 0.0 {
            cfg.background = Some(BackgroundTraffic {
                load,
                frame_bytes: 1500,
                priority_isolation: priority,
            });
        }
        let mut world = World::new(cfg);
        let end = world.end_time();
        world.run_until(end);
        let spread = world.phc_spread(end);
        let r = world.into_result();
        let stats = r.series.stats().expect("probes collected");
        println!(
            "{label:<24} {:>14} {:>11.0} ns {:>14} {:>12}",
            format!("{spread}"),
            stats.mean,
            format!("{}", stats.max),
            r.counters.frames_queued
        );
    }
    println!("\nThe clocks stay synchronized at every load; only the probe-based");
    println!("measurement degrades — the reading error the paper bounds with γ.");
}
