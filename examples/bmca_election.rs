//! The best master clock algorithm in action (IEEE 802.1AS clause 10.3).
//!
//! The paper disables BMCA in favor of static external port
//! configuration (its four grandmasters are fixed by design), but
//! `tsn-gptp` implements the algorithm: this example elects a
//! grandmaster among four time-aware systems, silences it, and watches
//! the election fail over to the next-best clock.
//!
//! ```sh
//! cargo run --release --example bmca_election
//! ```

use tsn_gptp::msg::{AnnounceBody, Header, Message, MessageType};
use tsn_gptp::{Bmca, ClockIdentity, ClockQuality, PortIdentity, SystemIdentity};
use tsn_time::{ClockTime, Nanos};

fn system(priority1: u8, idx: u32) -> SystemIdentity {
    SystemIdentity {
        priority1,
        quality: ClockQuality::default(),
        priority2: 248,
        identity: ClockIdentity::for_index(idx),
    }
}

fn announce(from: &SystemIdentity, src: u32) -> Message {
    Message::Announce {
        header: Header::new(
            MessageType::Announce,
            0,
            PortIdentity::new(ClockIdentity::for_index(src), 1),
            0,
            0,
        ),
        path_trace: vec![from.identity],
        body: AnnounceBody {
            current_utc_offset: 37,
            priority1: from.priority1,
            quality: from.quality,
            priority2: from.priority2,
            gm_identity: from.identity,
            steps_removed: 0,
            time_source: 0xA0,
        },
    }
}

fn main() {
    // Four time-aware systems; system 0 has the best (lowest) priority1.
    let systems: Vec<SystemIdentity> = (0..4).map(|i| system(100 + 10 * i as u8, i)).collect();
    let timeout = Nanos::from_secs(3);
    let mut bmcas: Vec<Bmca> = systems
        .iter()
        .map(|s| Bmca::new(*s, vec![1], timeout))
        .collect();

    println!("participants (priority1 / identity):");
    for s in &systems {
        println!("  p1 = {}  {}", s.priority1, s.identity);
    }

    let exchange = |bmcas: &mut Vec<Bmca>, alive: &[bool], now: ClockTime| {
        for (i, b) in bmcas.iter_mut().enumerate() {
            for (j, s) in systems.iter().enumerate() {
                if i != j && alive[j] {
                    b.consider_announce(1, &announce(s, j as u32), now);
                }
            }
            b.expire(now);
        }
    };

    // Round 1: everyone announces.
    let mut alive = vec![true; 4];
    exchange(&mut bmcas, &alive, ClockTime::ZERO);
    println!("\nafter the first Announce exchange:");
    for (i, b) in bmcas.iter().enumerate() {
        let d = b.decide();
        println!(
            "  system {i}: grandmaster = {}{}",
            d.grandmaster.identity,
            if d.is_grandmaster {
                "  (that's me)"
            } else {
                ""
            }
        );
    }

    // The elected GM (system 0) goes silent; the others keep announcing.
    // Note the two-phase behavior the standard implies: the dead master's
    // best-master information survives until the announce receipt
    // timeout; only the *next* Announce after expiry installs the
    // second-best clock.
    alive[0] = false;
    println!("\nsystem 0 goes silent…");
    for k in 1..=5i64 {
        let now = ClockTime::from_nanos(k * 1_000_000_000);
        exchange(&mut bmcas, &alive, now);
    }
    println!("after the announce receipt timeout ({} s):", 3);
    for (i, b) in bmcas.iter().enumerate().skip(1) {
        let d = b.decide();
        println!(
            "  system {i}: grandmaster = {}{}",
            d.grandmaster.identity,
            if d.is_grandmaster {
                "  (that's me)"
            } else {
                ""
            }
        );
    }
    println!("\nThe second-best clock (system 1) now masters the domain —");
    println!("hot-standby grandmaster failover, as IEEE 802.1AS intends.");
}
