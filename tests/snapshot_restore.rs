//! Tier-1: checkpoint/restore determinism.
//!
//! The fork-based campaign engine rests on three properties checked
//! here: a snapshot round-trips byte-exactly, a restored world continues
//! byte-identically to the uninterrupted original, and a warm-prefix
//! snapshot forked into a full configuration (interventions re-armed)
//! reproduces the cold run exactly.

use clocksync::snapshot::{checkpoint_time, warm_prefix_config};
use clocksync::{TestbedConfig, World, WorldSnapshot};
use tsn_faults::{AttackPlan, CveId, KernelAssignment, Strike};
use tsn_time::{Nanos, SimTime};

fn short_cfg(seed: u64) -> TestbedConfig {
    TestbedConfig {
        warmup: Nanos::from_secs(5),
        duration: Nanos::from_secs(8),
        ..TestbedConfig::quick(seed)
    }
}

/// A strike shortly after the warm-up, well inside the short duration.
fn short_attack() -> AttackPlan {
    AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(2),
        target_node: 3,
        cve: CveId::Cve2018_18955,
        pot_offset: Nanos::from_micros(-24),
        strategy: None,
    }])
}

#[test]
fn snapshot_roundtrips_byte_exactly() {
    let cfg = short_cfg(11);
    let mut world = World::new(cfg.clone());
    world.run_until(SimTime::from_secs(3));
    let snap = world.snapshot();
    // Envelope encode/decode is the identity.
    let decoded = WorldSnapshot::decode(&snap.encode()).expect("decode");
    assert_eq!(decoded, snap);
    // Restore into the same configuration reproduces the state bytes.
    let restored = World::restore(cfg, &snap).expect("restore");
    let again = restored.snapshot();
    assert_eq!(again.payload, snap.payload);
    assert_eq!(again.state_hash(), snap.state_hash());
    assert_eq!(again.at_ns, snap.at_ns);
    assert_eq!(again.events_processed, snap.events_processed);
}

#[test]
fn restore_rejects_foreign_config() {
    let cfg = short_cfg(11);
    let mut world = World::new(cfg.clone());
    world.run_until(SimTime::from_secs(1));
    let snap = world.snapshot();
    let other = short_cfg(12);
    assert!(World::restore(other, &snap).is_err());
}

#[test]
fn restored_world_continues_identically() {
    let cfg = short_cfg(23);
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;

    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    let mut warm = World::new(cfg.clone());
    warm.run_until(SimTime::from_secs(4));
    let snap = warm.snapshot();
    let mut resumed = World::restore(cfg, &snap).expect("restore");
    resumed.run_until(end);

    assert_eq!(resumed.events_processed(), cold.events_processed());
    assert_eq!(resumed.state_hash(), cold.state_hash());

    let a = cold.into_result();
    let b = resumed.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn forked_prefix_reproduces_cold_run_with_interventions() {
    let mut cfg = short_cfg(37);
    cfg.attack = short_attack();
    cfg.kernels = KernelAssignment::identical(cfg.nodes);
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;

    // Cold: the full configuration from t = 0.
    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    // Fork: simulate only the warm-prefix projection to the checkpoint,
    // then restore into the full configuration (which re-arms the
    // stripped strike) and continue.
    let cp = checkpoint_time(&cfg).expect("has warmup");
    let mut prefix = World::new(warm_prefix_config(&cfg));
    prefix.run_until(cp);
    let snap = prefix.snapshot();

    let mut forked = World::restore(cfg, &snap).expect("fork restore");
    forked.run_until(end);

    assert_eq!(forked.state_hash(), cold.state_hash());
    let a = cold.into_result();
    let b = forked.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    // The intervention actually fired in both.
    assert_eq!(a.counters.strikes_succeeded, 1);
}

#[test]
fn forked_prefix_reproduces_election_failover_run() {
    // The election machinery (Announce traffic, BMCA state, timers) runs
    // during the warm prefix and is snapshotted; the scheduled GM kill is
    // stripped by the projection and re-armed on restore. The forked
    // continuation must reproduce the cold failover run byte-exactly.
    let mut cfg = short_cfg(41);
    cfg.election = Some(clocksync::election::ElectionConfig {
        gm_failure_at: Some(Nanos::from_secs(2)),
        gm_failure_node: 1,
        ..clocksync::election::ElectionConfig::default()
    });
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;

    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    let cp = checkpoint_time(&cfg).expect("has warmup");
    let mut prefix = World::new(warm_prefix_config(&cfg));
    prefix.run_until(cp);
    let snap = prefix.snapshot();

    let mut forked = World::restore(cfg, &snap).expect("fork restore");
    forked.run_until(end);

    assert_eq!(forked.state_hash(), cold.state_hash());
    assert_eq!(forked.acting_masters(1), vec![2], "failover happened");
    let a = cold.into_result();
    let b = forked.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    assert!(a.counters.elected_gm_changes >= 1);
}
