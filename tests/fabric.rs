//! Tier-1: the multi-hop TSN switch fabric.
//!
//! Three properties anchor the subsystem:
//!
//! 1. **Inertness** — `fabric = None` runs are byte-identical to the
//!    pre-fabric build (state hashes and series fingerprints recorded
//!    before the subsystem existed are pinned as goldens).
//! 2. **Determinism** — an enabled fabric forks byte-identically from a
//!    warm-prefix snapshot (cold run == forked run).
//! 3. **The headline experiment** — offset error grows monotonically
//!    with network depth under cross-traffic in end-to-end mode, and
//!    transparent clocks recover sub-µs precision at the same depth,
//!    with the frame-conservation and Π-bound oracles silent on every
//!    cell.

use clocksync::fabric::FabricConfig;
use clocksync::snapshot::{checkpoint_time, warm_prefix_config};
use clocksync::trace::Subsystem;
use clocksync::{TestbedConfig, World};
use tsn_time::Nanos;

fn short_cfg(seed: u64) -> TestbedConfig {
    TestbedConfig {
        warmup: Nanos::from_secs(5),
        duration: Nanos::from_secs(8),
        ..TestbedConfig::quick(seed)
    }
}

/// Goldens recorded on the commit *before* the fabric subsystem was
/// merged: with `fabric = None` the world must still produce exactly
/// these state hashes, event counts, and series fingerprints.
#[test]
fn disabled_fabric_is_byte_identical_to_pre_fabric_build() {
    const GOLDEN: &[(u64, u64, u64, u64)] = &[
        (11, 0x02f79851864c48e3, 28986, 0xccd1ee7ef43e7ef5),
        (29, 0xd1becd2feca6452e, 27003, 0x6befce40430bb2b5),
    ];
    for &(seed, state_hash, events, series_fp) in GOLDEN {
        let cfg = short_cfg(seed);
        assert!(cfg.fabric.is_none(), "paper default has no fabric");
        let mut world = World::new(cfg);
        let end = world.end_time();
        world.run_until(end);
        assert_eq!(world.state_hash(), state_hash, "seed {seed}: state hash");
        assert_eq!(world.events_processed(), events, "seed {seed}: events");
        let result = world.into_result();
        assert_eq!(
            tsn_snapshot::fingerprint_str(&format!("{:?}", result.series)),
            series_fp,
            "seed {seed}: series fingerprint"
        );
        assert_eq!(result.counters.fabric_frames_forwarded, 0);
        assert_eq!(result.counters.fabric_frames_dropped, 0);
        assert_eq!(result.counters.max_residence_ns, 0);
        assert_eq!(result.counters.path_asymmetry_ns, 0);
    }
}

#[test]
fn enabled_fabric_cold_and_forked_runs_are_byte_identical() {
    let mut cfg = short_cfg(13);
    cfg.fabric = Some(FabricConfig {
        cross_traffic_load: 0.4,
        transparent_clock: true,
        asymmetry_ns: Nanos::from_nanos(150),
        ..FabricConfig::line(2)
    });
    let end = tsn_time::SimTime::ZERO + cfg.warmup + cfg.duration;

    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    let cp = checkpoint_time(&cfg).expect("has warmup");
    let mut prefix = World::new(warm_prefix_config(&cfg));
    prefix.run_until(cp);
    let snap = prefix.snapshot();

    let mut forked = World::restore(cfg, &snap).expect("fork restore");
    forked.run_until(end);

    assert_eq!(forked.state_hash(), cold.state_hash());
    let a = cold.into_result();
    let b = forked.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    // The fabric actually carried traffic and reported its asymmetry.
    assert!(a.counters.fabric_frames_forwarded > 0);
    assert!(a.counters.path_asymmetry_ns > 0);
}

/// The headline depth sweep (EXPERIMENTS.md "Network depth sweep"):
/// end-to-end mode degrades monotonically with hops under cross-traffic;
/// transparent clocks recover sub-µs at the deepest setting; every cell
/// satisfies its derived Π bound with the oracle registry silent.
#[test]
fn depth_sweep_degrades_e2e_and_transparent_clocks_recover() {
    let run = |hops: u32, tc: bool| {
        let cfg = TestbedConfig {
            warmup: Nanos::from_secs(5),
            duration: Nanos::from_secs(10),
            fabric: Some(FabricConfig {
                cross_traffic_load: 0.3,
                transparent_clock: tc,
                ..FabricConfig::line(hops)
            }),
            ..TestbedConfig::quick(7)
        };
        let mut world = World::new(cfg);
        world.enable_oracle();
        let end = world.end_time();
        world.run_until(end);
        let result = world.into_result();
        assert!(
            result.violations.is_empty(),
            "hops={hops} tc={tc}: oracle must stay silent, got {:?}",
            result.violations
        );
        assert!(result.counters.fabric_frames_forwarded > 0);
        assert!(result.counters.max_residence_ns > 0);
        assert_eq!(
            result.series.fraction_within(result.bounds.pi_plus_gamma()),
            1.0,
            "hops={hops} tc={tc}: measured precision must satisfy Π + γ"
        );
        let mean = result
            .series
            .samples()
            .iter()
            .map(|s| s.value.as_nanos() as f64)
            .sum::<f64>()
            / result.series.len().max(1) as f64;
        let max = result.series.max().map(|s| s.value).unwrap_or(Nanos::ZERO);
        (mean, max, result.bounds.pi)
    };

    // End-to-end: raw queuing error reaches the servo and compounds
    // with depth; the derived Π widens along with it.
    let (mean1, _, pi1) = run(1, false);
    let (mean3, _, pi3) = run(3, false);
    let (mean6, _, pi6) = run(6, false);
    assert!(
        mean1 < mean3 && mean3 < mean6,
        "E2E offset error must grow with depth: {mean1:.0} / {mean3:.0} / {mean6:.0} ns"
    );
    assert!(pi1 < pi3 && pi3 < pi6, "Π must widen with depth");
    assert!(
        mean6 > 10_000.0,
        "deep E2E under load is far from the paper's sub-µs: {mean6:.0} ns"
    );

    // Transparent clocks at the same depth and load: the correction
    // field cancels the queuing and sub-µs precision returns.
    let (mean_tc, max_tc, pi_tc) = run(6, true);
    assert!(
        max_tc < Nanos::from_micros(1),
        "TC mode must recover sub-µs at depth 6: max {max_tc}"
    );
    assert!(mean_tc < mean6 / 10.0, "TC mean must be an order better");
    assert!(pi_tc < pi6, "TC tightens the derived bound");
}

#[test]
fn fabric_crossings_land_in_the_trace_lane() {
    let mut cfg = short_cfg(19);
    cfg.duration = Nanos::from_secs(4);
    cfg.fabric = Some(FabricConfig::line(1));
    let mut world = World::new(cfg);
    world.enable_trace();
    let end = world.end_time();
    world.run_until(end);
    let report = world.into_result().trace.expect("trace enabled");
    let fabric_events = report
        .subsystems
        .iter()
        .find(|(s, _)| *s == Subsystem::Fabric)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(fabric_events > 0, "fabric lane must record sync crossings");
    assert!(report
        .events
        .iter()
        .any(|e| e.name == "fabric_sync" && e.cat == Subsystem::Fabric));
}
