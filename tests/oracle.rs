//! Integration tests for the runtime invariant oracle (`tsn-oracle`).
//!
//! Two properties matter end to end: a clean run of the paper's
//! scenarios must report zero violations (the invariants describe the
//! simulator, not a stricter ideal of it), and arming the oracle must
//! not change a single simulated bit — it observes, it never steers.
//! The latter is held to `World::state_hash` parity at the midpoint and
//! at the end of the run.

use clocksync::scenario::ScenarioKind;
use clocksync::{TestbedConfig, World};
use tsn_time::{Nanos, SimTime};

/// A short quick-preset run: long enough to get past warm-up into
/// fault-tolerant aggregation, short enough for a test.
fn quick_cfg(seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::quick(seed);
    cfg.duration = Nanos::from_secs(12);
    cfg.warmup = Nanos::from_secs(4);
    cfg
}

#[test]
fn clean_baseline_run_reports_no_violations() {
    let mut world = World::new(quick_cfg(7));
    assert!(!world.oracle_enabled());
    world.enable_oracle();
    assert!(world.oracle_enabled());
    let result = world.run();
    assert!(
        result.violations.is_empty(),
        "oracle flagged a clean baseline run:\n{:#?}",
        result.violations
    );
}

#[test]
fn clean_cyber_attack_run_reports_no_violations() {
    // The attacker compromises grandmasters (Byzantine domains), but as
    // long as at most f domains are compromised the FTA containment
    // invariant — and every other invariant — must still hold.
    let mut cfg = quick_cfg(11);
    ScenarioKind::CyberIdenticalKernels.apply(&mut cfg);
    let mut world = World::new(cfg);
    world.enable_oracle();
    let result = world.run();
    assert!(
        result.violations.is_empty(),
        "oracle flagged a cyber-attack run:\n{:#?}",
        result.violations
    );
}

#[test]
fn clean_fault_injection_run_reports_no_violations() {
    let mut cfg = quick_cfg(13);
    ScenarioKind::FaultInjection.apply(&mut cfg);
    let mut world = World::new(cfg);
    world.enable_oracle();
    let result = world.run();
    assert!(
        result.violations.is_empty(),
        "oracle flagged a fault-injection run:\n{:#?}",
        result.violations
    );
}

#[test]
fn oracle_does_not_perturb_state() {
    let cfg = quick_cfg(3);
    let mut plain = World::new(cfg.clone());
    let mut checked = World::new(cfg);
    checked.enable_oracle();

    let mid = SimTime::ZERO + Nanos::from_secs(6);
    plain.run_until(mid);
    checked.run_until(mid);
    assert_eq!(
        plain.state_hash(),
        checked.state_hash(),
        "oracle perturbed simulation state by the midpoint"
    );

    let end = plain.end_time();
    plain.run_until(end);
    checked.run_until(end);
    assert_eq!(
        plain.state_hash(),
        checked.state_hash(),
        "oracle perturbed simulation state by the end of the run"
    );

    let result = checked.into_result();
    assert!(
        result.violations.is_empty(),
        "oracle flagged a clean run:\n{:#?}",
        result.violations
    );
    assert!(plain.into_result().violations.is_empty());
}
