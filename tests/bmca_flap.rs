//! Integration: BMCA stability under bursty Announce loss.
//!
//! Dynamic elections are only trustworthy if a lossy network cannot make
//! them thrash: a Gilbert–Elliott burst process on the links eats whole
//! runs of Announce messages, which is exactly the input pattern that
//! provokes spurious announce-receipt timeouts and mastership flapping.
//! These tests run the election under such loss and demand that
//!
//! * the oracle invariants — including at-most-one-acting-master and
//!   election convergence — stay silent;
//! * the flap count (`elected_gm_changes`) stays bounded;
//! * the run is byte-identical between a cold execution and a
//!   warm-prefix fork (loss draws start strictly after the checkpoint).

use clocksync::election::ElectionConfig;
use clocksync::snapshot::{checkpoint_time, warm_prefix_config};
use clocksync::{TestbedConfig, World};
use tsn_netsim::{BurstLoss, LinkFaultPlan};
use tsn_time::Nanos;

/// Beyond this many elected-GM changes the election is thrashing, not
/// converging: with every home node alive the steady state is zero
/// changes, and a loss burst that grazes a timeout costs at most one
/// change away and one change back per domain.
const FLAP_BOUND: u64 = 2 * 4; // two changes per domain of the quick topology

fn lossy_election_cfg(seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::quick(seed);
    cfg.warmup = Nanos::from_secs(5);
    cfg.duration = Nanos::from_secs(12);
    cfg.election = Some(ElectionConfig::default());
    // A loss floor plus hard Gilbert–Elliott bursts: while the chain is
    // in its burst state most frames die, so consecutive Announces on
    // the same path are lost together.
    cfg.link_faults = Some(LinkFaultPlan {
        loss: 0.02,
        burst: Some(BurstLoss {
            p_enter: 0.02,
            p_exit: 0.25,
            p_loss: 0.9,
        }),
        asymmetry: Vec::new(),
        down: Vec::new(),
    });
    cfg
}

/// Bursty Announce loss must not destabilize the election: every domain
/// ends with exactly one acting master (its home node), the oracle —
/// with the at-most-one-acting-master invariant armed — stays silent,
/// and the flap count is bounded.
#[test]
fn announce_loss_keeps_election_stable() {
    let cfg = lossy_election_cfg(61);
    let n = cfg.nodes;
    let mut world = World::new(cfg);
    world.enable_oracle();
    let end = world.end_time();
    world.run_until(end);
    for d in 0..n {
        let masters = world.acting_masters(d as u8);
        assert!(
            masters.len() <= 1,
            "domain {d} has {} simultaneous acting masters: {masters:?}",
            masters.len()
        );
        assert_eq!(
            masters,
            vec![d],
            "domain {d} should still elect its home node under loss"
        );
    }
    let result = world.into_result();
    assert!(result.counters.announce_tx > 0, "masters announce");
    assert!(
        result.counters.elected_gm_changes <= FLAP_BOUND,
        "election thrashing: {} GM changes (bound {FLAP_BOUND})",
        result.counters.elected_gm_changes
    );
    assert!(
        result.violations.is_empty(),
        "oracle flagged the lossy election run:\n{:#?}",
        result.violations
    );
}

/// The lossy election run forks byte-identically: the Gilbert–Elliott
/// chain and the i.i.d. loss floor draw nothing before the warm-up
/// boundary, so a warm-prefix fork reproduces the cold run exactly —
/// same state hash, same series, same flap count.
#[test]
fn announce_loss_flap_run_forks_byte_identically() {
    let cfg = lossy_election_cfg(62);
    let end = tsn_time::SimTime::ZERO + cfg.warmup + cfg.duration;

    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    let cp = checkpoint_time(&cfg).expect("has warmup");
    let mut prefix = World::new(warm_prefix_config(&cfg));
    prefix.run_until(cp);
    let snap = prefix.snapshot();

    let mut forked = World::restore(cfg, &snap).expect("fork restore");
    forked.run_until(end);

    assert_eq!(forked.state_hash(), cold.state_hash());
    let a = cold.into_result();
    let b = forked.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    assert!(a.counters.announce_tx > 0, "masters announce");
    assert!(
        a.counters.elected_gm_changes <= FLAP_BOUND,
        "election thrashing: {} GM changes (bound {FLAP_BOUND})",
        a.counters.elected_gm_changes
    );
}
