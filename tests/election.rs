//! Integration: dynamic BMCA grandmaster election wired into the world.
//!
//! With `TestbedConfig::election` set, acting grandmasters are decided
//! at runtime from Announce traffic instead of the paper's static
//! external port configuration. These tests exercise the three regimes
//! end to end: steady state (every domain elects its home node),
//! failover (a scheduled GM kill re-elects the configured second-best
//! within the convergence bound), and adversarial capture (a rogue
//! master wins a foreign domain yet stays contained by FTA).

use clocksync::election::ElectionConfig;
use clocksync::faults::{AttackPlan, ByzantineStrategy, CveId, Strike, PAPER_POT_OFFSET};
use clocksync::{TestbedConfig, World};
use tsn_time::{Nanos, SimTime};

fn quick_cfg(seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::quick(seed);
    cfg.duration = Nanos::from_secs(14);
    cfg.warmup = Nanos::from_secs(4);
    cfg
}

/// Steady state: with no failures, the election converges on exactly
/// the static assignment — each domain's home node acts as its GM.
#[test]
fn election_converges_to_home_masters() {
    let mut cfg = quick_cfg(21);
    cfg.election = Some(ElectionConfig::default());
    let n = cfg.nodes;
    let mut world = World::new(cfg);
    world.enable_oracle();
    let end = world.end_time();
    world.run_until(end);
    for d in 0..n {
        assert_eq!(
            world.acting_masters(d as u8),
            vec![d],
            "domain {d} should elect its home node"
        );
    }
    let result = world.into_result();
    assert!(result.counters.announce_tx > 0, "masters announce");
    assert!(
        result.violations.is_empty(),
        "oracle flagged a clean election run:\n{:#?}",
        result.violations
    );
}

/// A scheduled kill of the best GM re-elects the configured
/// second-best (`(d + 1) % n`) within the convergence bound, and the
/// run stays free of invariant violations.
#[test]
fn gm_kill_reelects_second_best_within_bound() {
    let mut cfg = quick_cfg(22);
    let el = ElectionConfig {
        gm_failure_at: Some(Nanos::from_secs(3)),
        gm_failure_node: 0,
        ..ElectionConfig::default()
    };
    cfg.election = Some(el);
    let n = cfg.nodes;
    let mut world = World::new(cfg);
    world.enable_oracle();
    let end = world.end_time();
    world.run_until(end);
    assert_eq!(
        world.acting_masters(0),
        vec![1],
        "domain 0 fails over to its configured second-best"
    );
    for d in 1..n {
        assert_eq!(world.acting_masters(d as u8), vec![d]);
    }
    let result = world.into_result();
    assert!(
        result.counters.elected_gm_changes >= 1,
        "the failover is counted as an elected-GM change"
    );
    assert!(result.counters.reconvergence_ns > 0, "failover timed");
    assert!(
        result.counters.reconvergence_ns <= el.convergence_bound().as_nanos() as u64,
        "re-election took {} ns, bound {} ns",
        result.counters.reconvergence_ns,
        el.convergence_bound().as_nanos()
    );
    assert!(
        result.violations.is_empty(),
        "oracle flagged the failover run:\n{:#?}",
        result.violations
    );
}

/// A rogue master captures its foreign target domain (the forged
/// priority vector beats the home node's), yet the single Byzantine
/// domain stays contained: every oracle invariant — including
/// at-most-one-acting-master — remains silent.
#[test]
fn rogue_master_wins_election_but_is_contained() {
    let mut cfg = quick_cfg(23);
    cfg.election = Some(ElectionConfig::default());
    cfg.attack = AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(3),
        target_node: 2,
        cve: CveId::Cve2018_18955,
        pot_offset: PAPER_POT_OFFSET,
        strategy: Some(ByzantineStrategy::RogueMaster {
            offset: PAPER_POT_OFFSET,
        }),
    }]);
    let n = cfg.nodes;
    let mut world = World::new(cfg);
    world.enable_oracle();
    let end = world.end_time();
    world.run_until(end);
    // Node 2 forges the best vector on domain (2 + n - 1) % n = 1.
    let captured = (2 + n - 1) % n;
    assert_eq!(
        world.acting_masters(captured as u8),
        vec![2],
        "the rogue captures its foreign target domain"
    );
    for d in 0..n {
        if d != captured {
            assert_eq!(world.acting_masters(d as u8), vec![d]);
        }
    }
    let result = world.into_result();
    assert!(
        result.violations.is_empty(),
        "a single rogue domain must stay contained:\n{:#?}",
        result.violations
    );
}

/// With the election disabled the acting-master view is the paper's
/// static assignment, unchanged.
#[test]
fn election_off_keeps_static_assignment() {
    let cfg = quick_cfg(24);
    assert!(cfg.election.is_none());
    let n = cfg.nodes;
    let mut world = World::new(cfg);
    let end = world.end_time();
    world.run_until(end);
    for d in 0..n {
        assert_eq!(world.acting_masters(d as u8), vec![d]);
    }
    assert_eq!(world.into_result().counters.announce_tx, 0);
}
