//! Integration: fault-free operation of the full testbed.

use clocksync::{scenario, TestbedConfig, World};
use tsn_time::{Nanos, SimTime};

fn quick(seed: u64, secs: i64) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(secs);
    cfg
}

#[test]
fn converges_and_stays_within_bound() {
    let outcome = scenario::baseline(quick(42, 90));
    let r = &outcome.result;
    let stats = r.series.stats().expect("probes collected");
    assert!(stats.count >= 85, "only {} samples", stats.count);
    // Sub-microsecond average, as in the paper's steady state.
    assert!(stats.mean < 1_000.0, "average {} ns", stats.mean);
    assert_eq!(
        r.series.fraction_within(r.bounds.pi_plus_gamma()),
        1.0,
        "bound violated in fault-free operation"
    );
}

#[test]
fn deterministic_across_runs() {
    let a = scenario::baseline(quick(7, 45));
    let b = scenario::baseline(quick(7, 45));
    assert_eq!(a.result.series.samples(), b.result.series.samples());
    assert_eq!(a.result.counters, b.result.counters);
    assert_eq!(a.result.events.entries(), b.result.events.entries());
}

#[test]
fn different_seeds_differ() {
    let a = scenario::baseline(quick(1, 45));
    let b = scenario::baseline(quick(2, 45));
    assert_ne!(a.result.series.samples(), b.result.series.samples());
}

#[test]
fn ground_truth_phc_spread_converges() {
    let mut cfg = quick(3, 60);
    cfg.warmup = Nanos::from_secs(20);
    let mut world = World::new(cfg);
    let t = SimTime::from_secs(60);
    world.run_until(t);
    let spread = world.phc_spread(t);
    assert!(
        spread < Nanos::from_micros(2),
        "PHC ensemble spread {spread}"
    );
    let st = world.synctime_spread(t);
    assert!(st < Nanos::from_micros(3), "CLOCK_SYNCTIME spread {st}");
}

#[test]
fn bounds_match_paper_formula() {
    let outcome = scenario::baseline(quick(5, 30));
    let b = &outcome.result.bounds;
    // Γ = 2 · 5 ppm · 125 ms.
    assert_eq!(b.drift_offset, Nanos::from_nanos(1_250));
    // Π = 2 (E + Γ) for N = 4, f = 1.
    assert_eq!(
        b.pi,
        Nanos::from_nanos(2 * (b.reading_error.as_nanos() + 1_250))
    );
    assert_eq!(b.reading_error, b.d_max - b.d_min);
    // Calibration regime of the paper: E ≈ 5 µs, Π ≈ 11–14 µs, γ ≈ 1–3 µs.
    assert!(
        b.pi > Nanos::from_micros(8) && b.pi < Nanos::from_micros(16),
        "Π = {}",
        b.pi
    );
    assert!(b.gamma < Nanos::from_micros(4), "γ = {}", b.gamma);
}

#[test]
fn feed_forward_discipline_also_converges() {
    let mut cfg = quick(9, 60);
    cfg.sync_clock_discipline = clocksync::hyp::SyncClockDiscipline::FeedForward;
    let outcome = scenario::baseline(cfg);
    let r = &outcome.result;
    let stats = r.series.stats().expect("probes");
    assert!(stats.mean < 1_000.0, "average {} ns", stats.mean);
    assert_eq!(r.series.fraction_within(r.bounds.pi_plus_gamma()), 1.0);
}

#[test]
fn scales_to_more_nodes() {
    // 5 nodes / 5 domains still satisfies N > 3f and synchronizes.
    let mut cfg = quick(13, 60);
    cfg.nodes = 5;
    cfg.aggregation.domains = 5;
    cfg.kernels = clocksync::faults::KernelAssignment::identical(5);
    let outcome = scenario::baseline(cfg);
    let stats = outcome.result.series.stats().expect("probes");
    assert!(stats.mean < 1_500.0, "average {} ns", stats.mean);
}

#[test]
fn prior_work_baseline_gm_ensemble_diverges() {
    // The paper's §I critique of Kyriakakis et al., reproduced: without
    // mutual GM synchronization the grandmaster ensemble drifts apart
    // without bound, while the paper's distributed FTA keeps it within
    // the precision bound.
    let duration = Nanos::from_secs(600);

    let mut prior = {
        let mut cfg = TestbedConfig::paper_default(33);
        cfg.duration = duration;
        cfg.gm_mutual_sync = false;
        World::new(cfg)
    };
    let t_end = SimTime::from_secs(630);
    prior.run_until(t_end);
    let prior_spread = prior.gm_spread(t_end);

    let mut ours = World::new(quick(33, 600));
    ours.run_until(t_end);
    let ours_spread = ours.gm_spread(t_end);

    assert!(
        prior_spread > Nanos::from_micros(100),
        "prior-work GMs unexpectedly synchronized: {prior_spread}"
    );
    assert!(
        ours_spread < Nanos::from_micros(2),
        "our GM ensemble drifted: {ours_spread}"
    );
    // And the divergence shows up in the measured precision too (the
    // measured set contains the GM-hosting nodes).
    let r = prior.into_result();
    let frac = r.series.fraction_within(r.bounds.pi_plus_gamma());
    assert!(
        frac < 0.9,
        "prior-work baseline unexpectedly held the bound: {frac}"
    );
}

#[test]
fn frame_trace_captures_gptp_traffic() {
    let mut cfg = TestbedConfig::paper_default(77);
    cfg.duration = Nanos::from_secs(2);
    cfg.warmup = Nanos::from_secs(2);
    cfg.trace_capacity = 512;
    let mut world = World::new(cfg);
    world.run_until(SimTime::from_secs(4));
    let trace = world.frame_trace().expect("trace enabled");
    assert!(trace.total > 100, "only {} frame events", trace.total);
    let rendered = trace.render();
    assert!(rendered.contains("Sync dom="), "no syncs in:\n{rendered}");
    assert!(
        rendered.contains("Follow_Up dom=") || rendered.contains("Pdelay"),
        "unexpected trace:\n{rendered}"
    );
}
