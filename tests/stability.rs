//! Integration: the stability analysis of CLOCK_SYNCTIME (ADEV/MTIE of
//! the ground-truth and discipline-error series the world records).

use clocksync::{scenario, TestbedConfig};
use tsn_time::Nanos;

fn run(seed: u64, secs: i64) -> clocksync::RunResult {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = Nanos::from_secs(secs);
    scenario::run(cfg).result
}

#[test]
fn series_lengths_match_probe_count() {
    let r = run(51, 120);
    assert_eq!(r.ground_truth.x.len(), r.series.len() + 1);
    assert_eq!(r.discipline_error.x.len(), r.ground_truth.x.len());
    assert!((r.ground_truth.tau0 - 1.0).abs() < 1e-9);
}

#[test]
fn discipline_error_adev_integrates_down() {
    // The CLOCK_SYNCTIME discipline error is dominated by white-ish
    // phase noise (clock reads): its ADEV must fall with τ.
    let r = run(52, 600);
    let de = &r.discipline_error;
    let a1 = de.allan_deviation(1).expect("enough samples");
    let a64 = de.allan_deviation(64).expect("enough samples");
    assert!(
        a1 / a64 > 4.0,
        "ADEV not integrating down: {a1:e} vs {a64:e}"
    );
}

#[test]
fn discipline_error_mtie_stays_sub_10us() {
    let r = run(53, 600);
    let mtie = r.discipline_error.mtie(60).expect("enough samples");
    assert!(
        mtie < 10_000.0,
        "discipline error wandered {mtie} ns in 60 s windows"
    );
}

#[test]
fn ground_truth_includes_common_mode_wander() {
    // The absolute error carries the ensemble's slow common-mode wander
    // (EXPERIMENTS.md finding 1): over 10 minutes it exceeds the
    // discipline error's wander, but remains tiny in frequency terms.
    let r = run(54, 600);
    let gt = r.ground_truth.mtie(300).expect("enough samples");
    let de = r.discipline_error.mtie(300).expect("enough samples");
    assert!(gt > de, "common mode missing: gt {gt} vs de {de}");
    // Sanity ceiling: < 2 ms of wander in 10 minutes (≲ 7 ppm average).
    assert!(gt < 2_000_000.0, "implausible wander {gt} ns");
}
