//! Integration: the paper's cyber-resilience experiments (Fig. 3).
//!
//! These tests run a compressed version of the 1 h experiment: the two
//! strikes are moved to 3 min and 6 min so a 10 min simulated run
//! exercises the full before/strike-1/strike-2 sequence.

use clocksync::{scenario, TestbedConfig, World};
use tsn_faults::{
    AttackPlan, ByzantineStrategy, CveId, KernelAssignment, Strike, PAPER_POT_OFFSET,
};
use tsn_time::{Nanos, SimTime};

fn compressed_attack() -> AttackPlan {
    AttackPlan::new(vec![
        Strike {
            at: SimTime::from_secs(180),
            target_node: 3,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
            strategy: None,
        },
        Strike {
            at: SimTime::from_secs(360),
            target_node: 0,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
            strategy: None,
        },
    ])
}

fn cfg(kernels: KernelAssignment) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(7);
    cfg.duration = Nanos::from_secs(600);
    cfg.kernels = kernels;
    cfg.attack = compressed_attack();
    cfg
}

/// Precision stats of minute `m` of the measured axis.
fn minute_max(r: &clocksync::RunResult, m: u64) -> Nanos {
    let from = SimTime::ZERO + r.warmup + Nanos::from_secs((m * 60) as i64);
    r.series
        .window(from, from + Nanos::from_secs(60))
        .stats()
        .expect("samples in minute")
        .max
}

#[test]
fn identical_kernels_first_strike_masked_second_breaks_bound() {
    let outcome = scenario::run(cfg(KernelAssignment::identical(4)));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 2);
    assert_eq!(r.counters.strikes_failed, 0);
    let bound = r.bounds.pi_plus_gamma();

    // Before any strike: within bound.
    assert!(minute_max(r, 2) <= bound, "pre-attack violated");
    // Between strike 1 (min 3) and strike 2 (min 6): the FTA masks the
    // single Byzantine GM.
    assert!(
        minute_max(r, 5) <= bound,
        "first strike not masked: {}",
        minute_max(r, 5)
    );
    // After strike 2: the bound is violated (Byzantine tolerance f = 1
    // is exceeded).
    assert!(
        minute_max(r, 9) > bound,
        "second strike did not break synchronization: {} <= {bound}",
        minute_max(r, 9)
    );
}

#[test]
fn diverse_kernels_mask_the_whole_attack() {
    let outcome = scenario::run(cfg(KernelAssignment::diverse(4, 3)));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 1);
    assert_eq!(r.counters.strikes_failed, 1);
    assert_eq!(
        r.series.fraction_within(r.bounds.pi_plus_gamma()),
        1.0,
        "diversified system must stay within the bound"
    );
}

#[test]
fn attack_without_vulnerable_kernels_is_harmless() {
    let kernels = KernelAssignment::custom(vec![tsn_faults::KernelVersion::V5_4_0; 4]);
    let outcome = scenario::run(cfg(kernels));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 0);
    assert_eq!(r.counters.strikes_failed, 2);
    assert_eq!(r.series.fraction_within(r.bounds.pi_plus_gamma()), 1.0);
}

#[test]
fn strike_events_are_logged_with_outcome() {
    let outcome = scenario::run(cfg(KernelAssignment::diverse(4, 3)));
    let strikes: Vec<bool> = outcome
        .result
        .events
        .entries()
        .iter()
        .filter_map(|(_, e)| match e {
            tsn_metrics::ExperimentEvent::Strike { succeeded, .. } => Some(*succeeded),
            _ => None,
        })
        .collect();
    assert_eq!(strikes, vec![true, false]);
}

#[test]
fn every_strategy_on_one_domain_is_masked() {
    // Positive control for the adversary engine: with one compromised GM
    // (≤ f = 1) every strategy — including the trim-edge boundary hugger
    // — is absorbed by the FTA. The runtime oracle (FtaContainment among
    // others) must stay silent and the precision bound must hold.
    for name in ByzantineStrategy::NAMES {
        let strategy = ByzantineStrategy::named(name).expect("preset");
        let mut c = TestbedConfig {
            warmup: Nanos::from_secs(6),
            duration: Nanos::from_secs(22),
            ..TestbedConfig::quick(61)
        };
        c.attack = AttackPlan::new(vec![Strike {
            at: SimTime::from_secs(2),
            target_node: 3,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
            strategy: Some(strategy),
        }]);
        let mut world = World::new(c);
        world.enable_oracle();
        let r = world.run();
        assert_eq!(r.counters.strikes_succeeded, 1, "{name}: strike missed");
        assert_eq!(
            r.violations,
            Vec::new(),
            "{name}: oracle flagged a masked attack"
        );
        assert_eq!(
            r.series.fraction_within(r.bounds.pi_plus_gamma()),
            1.0,
            "{name}: single Byzantine domain not masked"
        );
    }
}

#[test]
fn colluding_trim_edge_beyond_f_breaks_containment() {
    // Negative control: f + 1 = 2 colluding GMs hugging their *joint*
    // trim edge. A lone trim-edge adversary is capped at the validity
    // threshold τ = 15 µs (measured from the median) and the f-trim
    // masks it; a colluding pair shifts the median itself to target/2,
    // so both lies stay within τ of the median up to a shared target of
    // 2τ − margin ≈ 29 µs. After the f-trim the honest nodes average
    // one surviving lie (≈ target/2 ≈ 14.5 µs) while the compromised
    // nodes (which never see their own lie) stay near zero — precision
    // breaks past π + γ. FtaContainment claims nothing beyond f, so the
    // break is asserted on the measured series, not the oracle.
    let mut c = TestbedConfig {
        warmup: Nanos::from_secs(6),
        duration: Nanos::from_secs(22),
        ..TestbedConfig::quick(11)
    };
    let edge = ByzantineStrategy::Colluding {
        target: Nanos::from_micros(29),
    };
    c.attack = AttackPlan::new(vec![
        Strike {
            at: SimTime::from_secs(2),
            target_node: 2,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
            strategy: Some(edge),
        },
        Strike {
            at: SimTime::from_secs(2),
            target_node: 3,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
            strategy: Some(edge),
        },
    ]);
    let r = World::new(c).run();
    assert_eq!(r.counters.strikes_succeeded, 2);
    assert!(
        r.series.fraction_within(r.bounds.pi_plus_gamma()) < 1.0,
        "f + 1 colluding trim-edge domains must break containment"
    );
}

#[test]
fn single_byzantine_gm_bounded_regardless_of_direction() {
    // A +24 µs shift (opposite sign to the paper's) is masked just the
    // same: the FTA discards extremes on both sides.
    let mut c = cfg(KernelAssignment::diverse(4, 3));
    c.attack = AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(180),
        target_node: 3,
        cve: CveId::Cve2018_18955,
        pot_offset: Nanos::from_micros(24),
        strategy: None,
    }]);
    let outcome = scenario::run(c);
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 1);
    assert_eq!(r.series.fraction_within(r.bounds.pi_plus_gamma()), 1.0);
}
