//! Integration: the paper's cyber-resilience experiments (Fig. 3).
//!
//! These tests run a compressed version of the 1 h experiment: the two
//! strikes are moved to 3 min and 6 min so a 10 min simulated run
//! exercises the full before/strike-1/strike-2 sequence.

use clocksync::{scenario, TestbedConfig};
use tsn_faults::{AttackPlan, CveId, KernelAssignment, Strike, PAPER_POT_OFFSET};
use tsn_time::{Nanos, SimTime};

fn compressed_attack() -> AttackPlan {
    AttackPlan::new(vec![
        Strike {
            at: SimTime::from_secs(180),
            target_node: 3,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
        },
        Strike {
            at: SimTime::from_secs(360),
            target_node: 0,
            cve: CveId::Cve2018_18955,
            pot_offset: PAPER_POT_OFFSET,
        },
    ])
}

fn cfg(kernels: KernelAssignment) -> TestbedConfig {
    let mut cfg = TestbedConfig::paper_default(7);
    cfg.duration = Nanos::from_secs(600);
    cfg.kernels = kernels;
    cfg.attack = compressed_attack();
    cfg
}

/// Precision stats of minute `m` of the measured axis.
fn minute_max(r: &clocksync::RunResult, m: u64) -> Nanos {
    let from = SimTime::ZERO + r.warmup + Nanos::from_secs((m * 60) as i64);
    r.series
        .window(from, from + Nanos::from_secs(60))
        .stats()
        .expect("samples in minute")
        .max
}

#[test]
fn identical_kernels_first_strike_masked_second_breaks_bound() {
    let outcome = scenario::run(cfg(KernelAssignment::identical(4)));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 2);
    assert_eq!(r.counters.strikes_failed, 0);
    let bound = r.bounds.pi_plus_gamma();

    // Before any strike: within bound.
    assert!(minute_max(r, 2) <= bound, "pre-attack violated");
    // Between strike 1 (min 3) and strike 2 (min 6): the FTA masks the
    // single Byzantine GM.
    assert!(
        minute_max(r, 5) <= bound,
        "first strike not masked: {}",
        minute_max(r, 5)
    );
    // After strike 2: the bound is violated (Byzantine tolerance f = 1
    // is exceeded).
    assert!(
        minute_max(r, 9) > bound,
        "second strike did not break synchronization: {} <= {bound}",
        minute_max(r, 9)
    );
}

#[test]
fn diverse_kernels_mask_the_whole_attack() {
    let outcome = scenario::run(cfg(KernelAssignment::diverse(4, 3)));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 1);
    assert_eq!(r.counters.strikes_failed, 1);
    assert_eq!(
        r.series.fraction_within(r.bounds.pi_plus_gamma()),
        1.0,
        "diversified system must stay within the bound"
    );
}

#[test]
fn attack_without_vulnerable_kernels_is_harmless() {
    let kernels = KernelAssignment::custom(vec![tsn_faults::KernelVersion::V5_4_0; 4]);
    let outcome = scenario::run(cfg(kernels));
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 0);
    assert_eq!(r.counters.strikes_failed, 2);
    assert_eq!(r.series.fraction_within(r.bounds.pi_plus_gamma()), 1.0);
}

#[test]
fn strike_events_are_logged_with_outcome() {
    let outcome = scenario::run(cfg(KernelAssignment::diverse(4, 3)));
    let strikes: Vec<bool> = outcome
        .result
        .events
        .entries()
        .iter()
        .filter_map(|(_, e)| match e {
            tsn_metrics::ExperimentEvent::Strike { succeeded, .. } => Some(*succeeded),
            _ => None,
        })
        .collect();
    assert_eq!(strikes, vec![true, false]);
}

#[test]
fn single_byzantine_gm_bounded_regardless_of_direction() {
    // A +24 µs shift (opposite sign to the paper's) is masked just the
    // same: the FTA discards extremes on both sides.
    let mut c = cfg(KernelAssignment::diverse(4, 3));
    c.attack = AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(180),
        target_node: 3,
        cve: CveId::Cve2018_18955,
        pot_offset: Nanos::from_micros(24),
    }]);
    let outcome = scenario::run(c);
    let r = &outcome.result;
    assert_eq!(r.counters.strikes_succeeded, 1);
    assert_eq!(r.series.fraction_within(r.bounds.pi_plus_gamma()), 1.0);
}
