//! Integration: the explicit degradation state machine and the network
//! fault surface.
//!
//! A partition that starves the aggregators of one node below the FTA
//! quorum must drive the documented Synchronized → Holdover → Freerun →
//! Synchronized sequence, observable from the run's event log, clean
//! under the runtime oracle, and byte-identical between cold and forked
//! execution. Rebooted VMs must rejoin the takeover chain as standby so
//! a later active failure stays covered.

use clocksync::snapshot::{checkpoint_time, warm_prefix_config};
use clocksync::{PartitionWindow, TestbedConfig, World};
use tsn_faults::{AttackPlan, ByzantineStrategy, CveId, FaultEvent, Strike, VmSlot};
use tsn_metrics::ExperimentEvent;
use tsn_netsim::{AsymmetricDelay, BurstLoss, LinkFaultPlan};
use tsn_time::{Nanos, SimTime, SyncState};

fn short_cfg(seed: u64) -> TestbedConfig {
    TestbedConfig {
        warmup: Nanos::from_secs(6),
        duration: Nanos::from_secs(22),
        ..TestbedConfig::quick(seed)
    }
}

/// The post-warmup `(from, to)` transition sequence of one aggregator.
///
/// The warm-up is excluded: right at the Startup → FaultTolerant mode
/// switch an aggregator may legitimately blip through Holdover while
/// the last domains converge, which is part of the unmeasured axis.
fn transitions_of(
    events: &tsn_metrics::EventLog,
    since: SimTime,
    node: usize,
    slot: usize,
) -> Vec<(SyncState, SyncState)> {
    events
        .entries()
        .iter()
        .filter_map(|(t, e)| match e {
            ExperimentEvent::SyncStateChange {
                node: n,
                slot: s,
                from,
                to,
            } if *t >= since && *n == node && *s == slot => Some((*from, *to)),
            _ => None,
        })
        .collect()
}

/// Total post-warmup degradation transitions across all aggregators.
fn post_warmup_transitions(events: &tsn_metrics::EventLog, since: SimTime) -> usize {
    events
        .entries()
        .iter()
        .filter(|(t, e)| *t >= since && matches!(e, ExperimentEvent::SyncStateChange { .. }))
        .count()
}

#[test]
fn partition_drives_holdover_freerun_and_reacquisition() {
    let mut cfg = short_cfg(41);
    // Cut node 0 off the switch mesh for 12 s: its aggregators see only
    // their own domain (1 < 2f + 1) and must degrade, then re-acquire
    // after the heal at +14 s (well before the 22 s end).
    cfg.partition = Some(PartitionWindow {
        node: 0,
        from: Nanos::from_secs(2),
        until: Nanos::from_secs(14),
    });
    let mut world = World::new(cfg.clone());
    world.enable_oracle();
    let result = world.run();
    let measured_from = SimTime::ZERO + cfg.warmup;

    // Both clock-sync VMs of the partitioned node walk the full machine.
    // Staleness can let a few post-onset aggregations still succeed, so
    // the walk may contain an extra Holdover ⇄ Synchronized bounce before
    // sustained starvation; assert the shape, not an exact edge list.
    for slot in 0..2 {
        let seq = transitions_of(&result.events, measured_from, 0, slot);
        assert_eq!(
            seq.first(),
            Some(&(SyncState::Synchronized, SyncState::Holdover)),
            "node 0 slot {slot} did not enter holdover first: {seq:?}"
        );
        assert!(
            seq.contains(&(SyncState::Holdover, SyncState::Freerun)),
            "node 0 slot {slot} never exhausted its holdover budget: {seq:?}"
        );
        assert_eq!(
            seq.last(),
            Some(&(SyncState::Freerun, SyncState::Synchronized)),
            "node 0 slot {slot} did not re-acquire after the heal: {seq:?}"
        );
        for (from, to) in &seq {
            assert!(from.can_transition_to(*to), "illegal edge {from} → {to}");
        }
    }
    // The surviving majority keeps quorum (loses 1 of 4 domains) and
    // never degrades.
    for node in 1..cfg.nodes {
        for slot in 0..2 {
            assert!(
                transitions_of(&result.events, measured_from, node, slot).is_empty(),
                "node {node} slot {slot} degraded despite quorum"
            );
        }
    }
    // Only the partitioned node's two aggregators transition after the
    // warm-up, and the counter covers at least those edges.
    let measured = post_warmup_transitions(&result.events, measured_from);
    assert!(measured >= 6, "expected full walks, saw {measured} edges");
    assert!(result.counters.sync_transitions >= measured as u64);
    // Dwell accounting covers the window between entry and reacquisition.
    assert!(
        result.counters.holdover_ns > 0 && result.counters.freerun_ns > 0,
        "dwell times not recorded: holdover={} freerun={}",
        result.counters.holdover_ns,
        result.counters.freerun_ns
    );
    // Every edge is legal and holdover drift stays inside its budget.
    assert_eq!(
        result.violations,
        Vec::new(),
        "oracle flagged the degradation walk"
    );
}

#[test]
fn partition_and_link_faults_fork_byte_identically() {
    let mut cfg = short_cfg(43);
    cfg.partition = Some(PartitionWindow {
        node: 0,
        from: Nanos::from_secs(2),
        until: Nanos::from_secs(14),
    });
    cfg.link_faults = Some(LinkFaultPlan {
        loss: 0.02,
        burst: Some(BurstLoss {
            p_enter: 0.01,
            p_exit: 0.2,
            p_loss: 0.8,
        }),
        asymmetry: vec![AsymmetricDelay {
            link: 0,
            extra_ab: Nanos::from_micros(3),
            extra_ba: Nanos::ZERO,
        }],
        down: Vec::new(),
    });
    cfg.attack = AttackPlan::new(vec![Strike {
        at: SimTime::from_secs(1),
        target_node: 3,
        cve: CveId::Cve2018_18955,
        pot_offset: Nanos::from_micros(-24),
        strategy: Some(ByzantineStrategy::Oscillating {
            amplitude: Nanos::from_micros(24),
            period: Nanos::from_secs(4),
        }),
    }]);
    let end = SimTime::ZERO + cfg.warmup + cfg.duration;

    let mut cold = World::new(cfg.clone());
    cold.run_until(end);

    let cp = checkpoint_time(&cfg).expect("has warmup");
    let mut prefix = World::new(warm_prefix_config(&cfg));
    prefix.run_until(cp);
    let snap = prefix.snapshot();
    let mut forked = World::restore(cfg, &snap).expect("fork restore");
    forked.run_until(end);

    assert_eq!(forked.state_hash(), cold.state_hash());
    let a = cold.into_result();
    let b = forked.into_result();
    assert_eq!(a.series, b.series);
    assert_eq!(a.events, b.events);
    assert_eq!(a.counters, b.counters);
    // The interventions actually fired: the strike landed and the
    // partitioned node walked the degradation machine in both runs.
    assert_eq!(a.counters.strikes_succeeded, 1);
    let measured_from = SimTime::ZERO + Nanos::from_secs(6);
    let walk = transitions_of(&a.events, measured_from, 0, 0);
    assert_eq!(walk, transitions_of(&b.events, measured_from, 0, 0));
    assert!(
        walk.contains(&(SyncState::Holdover, SyncState::Freerun)),
        "partitioned node never degraded to freerun: {walk:?}"
    );
}

#[test]
fn lossy_links_alone_keep_quorum_and_precision() {
    // 2 % i.i.d. loss: staleness (500 ms = 4 sync intervals) rides over
    // isolated losses, so no aggregator degrades and the precision bound
    // holds.
    let mut cfg = short_cfg(47);
    cfg.link_faults = Some(LinkFaultPlan::with_loss(0.02));
    let mut world = World::new(cfg.clone());
    world.enable_oracle();
    let result = world.run();
    // Correlated loss may graze Holdover briefly, but the holdover budget
    // absorbs it: nobody ever falls to Freerun.
    assert_eq!(
        result.counters.freerun_ns, 0,
        "2 % loss drove an aggregator to freerun"
    );
    assert_eq!(result.violations, Vec::new());
    assert_eq!(
        result.series.fraction_within(result.bounds.pi_plus_gamma()),
        1.0,
        "loss-tolerant sync exceeded the bound"
    );
}

#[test]
fn rebooted_vm_rejoins_as_standby_and_covers_next_failure() {
    let mut cfg = short_cfg(53);
    // GM VM of node 2 fails and reboots; afterwards the promoted
    // redundant VM fails. The rebooted GM VM must be back in the chain
    // as standby, so the second takeover is covered.
    cfg.explicit_faults = Some(vec![
        FaultEvent {
            at: SimTime::from_secs(1),
            reboot_at: SimTime::from_secs(4),
            node: 2,
            slot: VmSlot::Grandmaster,
        },
        FaultEvent {
            at: SimTime::from_secs(8),
            reboot_at: SimTime::from_secs(18),
            node: 2,
            slot: VmSlot::Redundant,
        },
    ]);
    let result = World::new(cfg).run();
    assert_eq!(result.counters.vm_failures, 2);
    assert_eq!(result.counters.gm_failures, 1);
    assert_eq!(
        result.counters.takeovers, 2,
        "second failure not failed over to the rebooted VM"
    );
    assert_eq!(
        result.counters.uncovered_failures, 0,
        "monitor saw an uncovered failure despite the rebooted standby"
    );
}

#[test]
fn overlapping_failures_are_counted_as_uncovered() {
    // Negative control (deliberately outside the fault hypothesis):
    // both clock-sync VMs of one node down at once leaves the monitor
    // with no standby to promote.
    let mut cfg = short_cfg(59);
    cfg.explicit_faults = Some(vec![
        FaultEvent {
            at: SimTime::from_secs(1),
            reboot_at: SimTime::from_secs(12),
            node: 2,
            slot: VmSlot::Grandmaster,
        },
        FaultEvent {
            at: SimTime::from_secs(2),
            reboot_at: SimTime::from_secs(12),
            node: 2,
            slot: VmSlot::Redundant,
        },
    ]);
    let result = World::new(cfg).run();
    assert_eq!(result.counters.vm_failures, 2);
    assert!(
        result.counters.uncovered_failures > 0,
        "no-standby window went unreported"
    );
}
