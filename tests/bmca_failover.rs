//! Integration: BMCA as an alternative to external port configuration.
//!
//! The paper's experiments disable BMCA ("external port configuration
//! enabled, meaning that there is no best master clock algorithm"), but
//! IEEE 802.1AS specifies it and `tsn-gptp` implements it. These tests
//! elect grandmasters across a simulated set of time-aware systems and
//! exercise failover on GM silence.

use tsn_gptp::msg::Message;
use tsn_gptp::{Bmca, ClockIdentity, ClockQuality, PortIdentity, PortRole, SystemIdentity};
use tsn_time::{ClockTime, Nanos};

fn system(priority1: u8, idx: u32) -> SystemIdentity {
    SystemIdentity {
        priority1,
        quality: ClockQuality::default(),
        priority2: 248,
        identity: ClockIdentity::for_index(idx),
    }
}

fn announce_from(sys: &SystemIdentity, steps: u16, src: u32) -> Message {
    Message::Announce {
        header: tsn_gptp::msg::Header::new(
            tsn_gptp::msg::MessageType::Announce,
            0,
            PortIdentity::new(ClockIdentity::for_index(src), 1),
            0,
            0,
        ),
        path_trace: vec![sys.identity, ClockIdentity::for_index(src)],
        body: tsn_gptp::msg::AnnounceBody {
            current_utc_offset: 37,
            priority1: sys.priority1,
            quality: sys.quality,
            priority2: sys.priority2,
            gm_identity: sys.identity,
            steps_removed: steps,
            time_source: 0xA0,
        },
    }
}

const TIMEOUT: Nanos = Nanos::from_secs(3);

/// Announce messages survive a byte-level round trip into BMCA.
#[test]
fn announce_codec_feeds_bmca() {
    let gm = system(100, 1);
    let bytes = announce_from(&gm, 0, 1).encode();
    let decoded = Message::decode(&bytes).expect("announce decodes");
    let mut bmca = Bmca::new(system(246, 9), vec![1], TIMEOUT);
    bmca.consider_announce(1, &decoded, ClockTime::ZERO);
    let d = bmca.decide();
    assert!(!d.is_grandmaster);
    assert_eq!(d.grandmaster.identity, gm.identity);
}

/// Full election among four systems: the lowest priority wins on every
/// participant, consistently.
#[test]
fn four_system_election_is_consistent() {
    let systems: Vec<SystemIdentity> = (0..4).map(|i| system(240 + i as u8, i)).collect();
    let winner = systems[0];
    let mut elected = Vec::new();
    for me in 0..4usize {
        let mut bmca = Bmca::new(systems[me], vec![1], TIMEOUT);
        for (other, sys) in systems.iter().enumerate() {
            if other != me {
                bmca.consider_announce(1, &announce_from(sys, 0, other as u32), ClockTime::ZERO);
            }
        }
        let d = bmca.decide();
        elected.push(d.grandmaster.identity);
        assert_eq!(d.is_grandmaster, me == 0);
    }
    assert!(elected.iter().all(|id| *id == winner.identity));
}

/// When the elected GM goes silent, each remaining system fails over to
/// the next-best after the announce receipt timeout.
#[test]
fn silence_triggers_failover_to_next_best() {
    let best = system(100, 1);
    let second = system(150, 2);
    let mut bmca = Bmca::new(system(246, 9), vec![1], TIMEOUT);
    // Both heard initially.
    bmca.consider_announce(1, &announce_from(&best, 0, 1), ClockTime::ZERO);
    let d = bmca.decide();
    assert_eq!(d.grandmaster.identity, best.identity);
    // The best goes silent; the second keeps announcing.
    for k in 1..=5i64 {
        let now = ClockTime::from_nanos(k * 1_000_000_000);
        bmca.consider_announce(1, &announce_from(&second, 0, 2), now);
        bmca.expire(now);
    }
    let d = bmca.decide();
    assert!(!d.is_grandmaster);
    assert_eq!(
        d.grandmaster.identity, second.identity,
        "failover to the second-best GM"
    );
}

/// The BMCA assigns exactly one slave port and blocks redundant paths.
#[test]
fn multi_port_roles_are_loop_free() {
    let root = system(100, 1);
    let mut bmca = Bmca::new(system(246, 9), vec![1, 2, 3], TIMEOUT);
    bmca.consider_announce(1, &announce_from(&root, 1, 5), ClockTime::ZERO);
    bmca.consider_announce(2, &announce_from(&root, 2, 6), ClockTime::ZERO);
    // Port 3 hears nothing.
    let d = bmca.decide();
    assert_eq!(d.slave_port, Some(1), "shortest path to the root");
    assert_eq!(d.roles[&2], PortRole::Passive, "redundant path blocked");
    assert_eq!(d.roles[&3], PortRole::Master);
    let slaves = d.roles.values().filter(|r| **r == PortRole::Slave).count();
    assert_eq!(slaves, 1);
}
