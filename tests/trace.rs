//! Integration tests for structured execution tracing (`tsn-trace`).
//!
//! Two properties matter end to end: arming the tracer must not change
//! a single simulated bit (held to `World::state_hash` parity at the
//! midpoint and end of a run, like the oracle), and the trace a run
//! produces must actually carry the simulation's story — gPTP message
//! tx/rx, FTA rounds with trim decisions, servo updates, sync-state
//! transitions — as valid Chrome trace-event JSON.

use clocksync::scenario::{self, RunOptions, ScenarioKind};
use clocksync::trace::{Subsystem, TraceReport};
use clocksync::{PartitionWindow, TestbedConfig, World};
use tsn_time::{Nanos, SimTime};

/// A short quick-preset run: long enough to get past warm-up into
/// fault-tolerant aggregation, short enough for a test.
fn quick_cfg(seed: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::quick(seed);
    cfg.duration = Nanos::from_secs(12);
    cfg.warmup = Nanos::from_secs(4);
    cfg
}

fn count(report: &TraceReport, name: &str) -> usize {
    report.events.iter().filter(|e| e.name == name).count()
}

#[test]
fn tracer_does_not_perturb_state() {
    let cfg = quick_cfg(3);
    let mut plain = World::new(cfg.clone());
    let mut traced = World::new(cfg);
    assert!(!traced.trace_enabled());
    traced.enable_trace();
    assert!(traced.trace_enabled());

    let mid = SimTime::ZERO + Nanos::from_secs(6);
    plain.run_until(mid);
    traced.run_until(mid);
    assert_eq!(
        plain.state_hash(),
        traced.state_hash(),
        "tracer perturbed simulation state by the midpoint"
    );

    let end = plain.end_time();
    plain.run_until(end);
    traced.run_until(end);
    assert_eq!(
        plain.state_hash(),
        traced.state_hash(),
        "tracer perturbed simulation state by the end of the run"
    );

    assert!(plain.into_result().trace.is_none());
    assert!(traced.into_result().trace.is_some());
}

#[test]
fn baseline_trace_tells_the_run_story() {
    let mut world = World::new(quick_cfg(7));
    world.enable_trace();
    let result = world.run();
    let report = result.trace.expect("tracing was enabled");

    // Every queue pop was counted, none individually recorded.
    assert!(report.sim_events > 0);
    assert!(report.events.len() < report.sim_events as usize);
    assert_eq!(report.dropped, 0);
    let pops: u64 = report.pop_kinds.iter().map(|(_, n)| n).sum();
    assert_eq!(pops, report.sim_events);
    assert!(report.pop_kinds.iter().any(|(k, _)| *k == "transmit"));

    // The protocol story: gPTP traffic, FTA rounds with inputs and trim
    // decisions, servo corrections, and a sync-state transition out of
    // the initial freerun.
    assert!(count(&report, "ptp_tx") > 0);
    assert!(count(&report, "ptp_rx") > 0);
    assert!(count(&report, "servo") > 0);
    assert!(count(&report, "sync_state") > 0);
    let fta = report
        .events
        .iter()
        .find(|e| e.name == "fta_round")
        .expect("aggregation rounds are traced");
    assert_eq!(fta.cat, Subsystem::Fta);
    assert!(fta.args.iter().any(|(k, _)| *k == "offset_ns"));
    assert!(fta.args.iter().any(|(k, _)| *k == "used"));
    assert!(fta.args.iter().any(|(k, _)| *k == "servo"));

    // Probe traffic shows up under the measurement subsystem.
    assert!(count(&report, "probe_rx") > 0);
    assert!(report.subsystem_share(Subsystem::Measure) > 0.0);

    // And it all exports as a Chrome trace-event JSON object.
    let json = report.to_chrome_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"cat\":\"fta\""));
    assert!(json.contains("\"process_name\""));
}

#[test]
fn partition_window_is_traced_as_span() {
    let mut cfg = quick_cfg(5);
    cfg.partition = Some(PartitionWindow {
        node: 0,
        from: Nanos::from_secs(2),
        until: Nanos::from_secs(4),
    });
    let mut world = World::new(cfg);
    world.enable_trace();
    let report = world.run().trace.expect("tracing was enabled");
    let span = report
        .events
        .iter()
        .find(|e| e.name == "link_down")
        .expect("partition window traced");
    assert_eq!(span.cat, Subsystem::Netsim);
    let dur = span.dur.expect("window closed as a complete span");
    assert!(dur > Nanos::ZERO);
}

#[test]
fn scenario_runner_arms_the_tracer_on_request() {
    let outcome = scenario::run_named_with(
        "baseline",
        quick_cfg(9),
        RunOptions {
            oracle: false,
            trace: true,
            ..RunOptions::default()
        },
    )
    .expect("known scenario");
    assert!(outcome.result.trace.is_some());

    let outcome = scenario::run_named("baseline", quick_cfg(9)).expect("known scenario");
    assert!(outcome.result.trace.is_none());
}

#[test]
fn attack_run_traces_strikes_and_byzantine_domains() {
    // The paper's strikes land at 21+ minutes; move the first one into
    // this short run's measured window.
    let mut cfg = quick_cfg(11);
    ScenarioKind::CyberIdenticalKernels.apply(&mut cfg);
    let mut strikes = cfg.attack.strikes().to_vec();
    strikes.truncate(1);
    strikes[0].at = SimTime::from_secs(2);
    strikes[0].target_node = cfg.nodes - 1;
    cfg.attack = clocksync::faults::AttackPlan::new(strikes);
    let mut world = World::new(cfg);
    world.enable_trace();
    let report = world.run().trace.expect("tracing was enabled");
    assert!(count(&report, "strike") > 0);
    let strike = report
        .events
        .iter()
        .find(|e| e.name == "strike")
        .expect("strikes are traced");
    assert!(strike.args.iter().any(|(k, _)| *k == "succeeded"));
}
