//! Integration: the gPTP pipeline assembled by hand — grandmaster →
//! time-aware bridge → slave — with explicit clocks, checking that the
//! correction-field accumulation and the slave's offset computation
//! reproduce the ground truth.

use tsn_gptp::msg::Message;
use tsn_gptp::{BridgeRelay, ClockIdentity, PortIdentity, SyncMaster, SyncSlave};
use tsn_time::{ClockTime, Nanos, Phc, SimTime};

/// Drives one Sync/Follow_Up exchange through a bridge with the given
/// true-time delays and returns the slave's measured offset.
///
/// Ground truth: all clocks ideal (zero drift), slave's epoch shifted by
/// `slave_shift` — the measured offset must equal `slave_shift`.
fn run_pipeline(
    link1: i64,     // GM → bridge
    residence: i64, // bridge store-and-forward
    link2: i64,     // bridge → slave
    slave_shift: i64,
) -> Nanos {
    let gm_id = PortIdentity::new(ClockIdentity::for_index(1), 1);
    let mut gm_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 0.0);
    let mut bridge_clock = Phc::new(ClockTime::from_nanos(5_000_000_000), 0.0);
    let mut slave_clock = Phc::new(ClockTime::from_nanos(1_000_000_000 + slave_shift), 0.0);

    let mut master = SyncMaster::new(0, gm_id, -3);
    let mut relay = BridgeRelay::new(0, ClockIdentity::for_index(2), 5, vec![1]);
    let mut slave = SyncSlave::new(0);

    // t0: Sync leaves the GM.
    let t0 = SimTime::from_secs(10);
    let (sync_bytes, seq) = master.make_sync();
    let fu_bytes = master
        .sync_sent(seq, gm_clock.now(t0))
        .expect("follow-up produced");

    // Arrives at the bridge's slave port after link1.
    let t1 = t0 + Nanos::from_nanos(link1);
    let sync = Message::decode(&sync_bytes).unwrap();
    let out = relay.handle_sync(&sync, 5, bridge_clock.now(t1));
    assert_eq!(out.len(), 1, "one master port");
    let (port, fwd_sync_bytes) = &out[0];
    assert_eq!(*port, 1);

    // Regenerated Sync departs after the residence time.
    let t2 = t1 + Nanos::from_nanos(residence);
    let fus = relay.sync_forwarded(seq, 1, bridge_clock.now(t2));
    assert!(fus.is_empty(), "upstream FU not seen yet");

    // Upstream Follow_Up reaches the bridge (general message, link1
    // pdelay-measured delay fed in).
    let fu = Message::decode(&fu_bytes).unwrap();
    let fwd_fus = relay.handle_follow_up(&fu, 5, Nanos::from_nanos(link1), 1.0);
    assert_eq!(fwd_fus.len(), 1);

    // Slave receives the regenerated Sync after link2 and then the
    // forwarded Follow_Up.
    let t3 = t2 + Nanos::from_nanos(link2);
    let fwd_sync = Message::decode(fwd_sync_bytes).unwrap();
    slave.handle_sync(&fwd_sync, slave_clock.now(t3));
    let fwd_fu = Message::decode(&fwd_fus[0].1).unwrap();
    let sample = slave
        .handle_follow_up(&fwd_fu, Nanos::from_nanos(link2), 1.0)
        .expect("offset sample");
    sample.offset
}

#[test]
fn offset_is_exact_for_synchronized_clocks() {
    let offset = run_pipeline(2_000, 8_000, 2_500, 0);
    assert_eq!(offset, Nanos::ZERO);
}

#[test]
fn offset_recovers_slave_shift() {
    for shift in [-24_000i64, -500, 42, 10_000] {
        let offset = run_pipeline(2_000, 8_000, 2_500, shift);
        assert_eq!(offset, Nanos::from_nanos(shift), "shift {shift}");
    }
}

#[test]
fn offset_independent_of_path_delays() {
    // Residence and link delays are fully compensated by the correction
    // field, whatever their values.
    for (l1, res, l2) in [
        (100, 1_000, 100),
        (9_000, 125_000, 9_000),
        (4_120, 50_000, 2_060),
    ] {
        let offset = run_pipeline(l1, res, l2, 777);
        assert_eq!(offset, Nanos::from_nanos(777), "delays {l1}/{res}/{l2}");
    }
}

#[test]
fn bridge_clock_epoch_is_irrelevant() {
    // The bridge's clock only measures residence (a difference), so its
    // absolute value must not matter — run_pipeline uses an epoch 4 s
    // away from the GM's and still gets exact offsets (checked above);
    // here we additionally verify a drifting bridge is compensated by
    // the rate-ratio scaling at ±100 ppm.
    let gm_id = PortIdentity::new(ClockIdentity::for_index(1), 1);
    let mut gm_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 0.0);
    let mut bridge_clock = Phc::new(ClockTime::from_nanos(5_000_000_000), 100_000.0); // +100 ppm
    let mut slave_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 0.0);

    let mut master = SyncMaster::new(0, gm_id, -3);
    let mut relay = BridgeRelay::new(0, ClockIdentity::for_index(2), 5, vec![1]);
    let mut slave = SyncSlave::new(0);

    let t0 = SimTime::from_secs(10);
    let (sync_bytes, seq) = master.make_sync();
    let fu_bytes = master.sync_sent(seq, gm_clock.now(t0)).unwrap();
    let t1 = t0 + Nanos::from_nanos(2_000);
    let sync = Message::decode(&sync_bytes).unwrap();
    let out = relay.handle_sync(&sync, 5, bridge_clock.now(t1));
    // Long residence so the drift matters: 10 ms at +100 ppm = 1 µs of
    // bridge-clock error, which the neighbor-rate-ratio correction must
    // cancel. The bridge knows its rate relative to the GM via the
    // TLV/NRR product; here NRR = gm/bridge rate.
    let t2 = t1 + Nanos::from_millis(10);
    relay.sync_forwarded(seq, 1, bridge_clock.now(t2));
    let fu = Message::decode(&fu_bytes).unwrap();
    let nrr = 1.0 / (1.0 + 100e-6); // GM rate per bridge rate
    let fwd_fus = relay.handle_follow_up(&fu, 5, Nanos::from_nanos(2_000), nrr);
    let t3 = t2 + Nanos::from_nanos(2_500);
    let fwd_sync = Message::decode(&out[0].1).unwrap();
    slave.handle_sync(&fwd_sync, slave_clock.now(t3));
    let fwd_fu = Message::decode(&fwd_fus[0].1).unwrap();
    let sample = slave
        .handle_follow_up(&fwd_fu, Nanos::from_nanos(2_500), 1.0)
        .expect("sample");
    assert!(
        sample.offset.abs() <= Nanos::from_nanos(2),
        "bridge drift leaked into the offset: {}",
        sample.offset
    );
}

#[test]
fn malicious_pot_shifts_offset_through_the_whole_pipeline() {
    // End-to-end version of the attack: the GM's POT shift propagates
    // through the bridge unchanged and lands as an offset error of the
    // same magnitude at the slave.
    let gm_id = PortIdentity::new(ClockIdentity::for_index(1), 1);
    let mut gm_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 0.0);
    let mut bridge_clock = Phc::new(ClockTime::from_nanos(5_000_000_000), 0.0);
    let mut slave_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 0.0);

    let mut master = SyncMaster::new(0, gm_id, -3);
    master.pot_offset = Nanos::from_micros(-24);
    let mut relay = BridgeRelay::new(0, ClockIdentity::for_index(2), 5, vec![1]);
    let mut slave = SyncSlave::new(0);

    let t0 = SimTime::from_secs(10);
    let (sync_bytes, seq) = master.make_sync();
    let fu_bytes = master.sync_sent(seq, gm_clock.now(t0)).unwrap();
    let t1 = t0 + Nanos::from_nanos(2_000);
    let sync = Message::decode(&sync_bytes).unwrap();
    let out = relay.handle_sync(&sync, 5, bridge_clock.now(t1));
    let t2 = t1 + Nanos::from_nanos(8_000);
    relay.sync_forwarded(seq, 1, bridge_clock.now(t2));
    let fu = Message::decode(&fu_bytes).unwrap();
    let fwd_fus = relay.handle_follow_up(&fu, 5, Nanos::from_nanos(2_000), 1.0);
    let t3 = t2 + Nanos::from_nanos(2_500);
    let fwd_sync = Message::decode(&out[0].1).unwrap();
    slave.handle_sync(&fwd_sync, slave_clock.now(t3));
    let fwd_fu = Message::decode(&fwd_fus[0].1).unwrap();
    let sample = slave
        .handle_follow_up(&fwd_fu, Nanos::from_nanos(2_500), 1.0)
        .expect("sample");
    assert_eq!(sample.offset, Nanos::from_micros(24));
}

#[test]
fn e2e_mechanism_agrees_with_pdelay_on_symmetric_paths() {
    // The IEEE 1588 end-to-end mechanism measured over the same
    // symmetric path yields the same delay the peer-delay service would,
    // so offsets computed with either mechanism agree.
    use tsn_gptp::{E2eDelayInitiator, E2eDelayResponder};

    let slave_pid = PortIdentity::new(ClockIdentity::for_index(20), 1);
    let master_pid = PortIdentity::new(ClockIdentity::for_index(21), 1);
    let mut master_clock = Phc::new(ClockTime::from_nanos(2_000_000_000), 0.0);
    let mut slave_clock = Phc::new(ClockTime::from_nanos(2_000_000_000 + 750), 0.0);

    let path = Nanos::from_nanos(4_120);
    let mut init = E2eDelayInitiator::new(0, slave_pid);
    let resp = E2eDelayResponder::new(0, master_pid);

    // One Sync exchange establishes (t1, t2).
    let t_sync = SimTime::from_secs(5);
    let t1 = master_clock.now(t_sync);
    let t2 = slave_clock.now(t_sync + path);
    init.note_sync(t1, t2);

    // Delay_Req in the reverse direction.
    let (req, seq) = init.make_request();
    let t_req = SimTime::from_secs(6);
    init.request_sent(seq, slave_clock.now(t_req));
    let t4 = master_clock.now(t_req + path);
    let req = Message::decode(&req).unwrap();
    let resp_bytes = resp.handle_request(&req, t4).unwrap();
    let resp_msg = Message::decode(&resp_bytes).unwrap();
    let sample = init.handle_resp(&resp_msg).expect("exchange completes");

    // Path delay recovered exactly despite the slave's +750 ns offset.
    assert_eq!(sample.raw_delay, path);
    // Offset computed E2E style: t2 − t1 − delay = slave shift.
    let offset = (t2 - t1) - sample.raw_delay;
    assert_eq!(offset, Nanos::from_nanos(750));
}
