//! Integration: fail-silent fault injection and dependent-clock
//! takeovers (a compressed version of the paper's 24 h experiment).

use clocksync::{scenario, TestbedConfig};
use tsn_faults::{FaultSchedule, InjectorConfig};
use tsn_metrics::ExperimentEvent;
use tsn_netsim::SeedSplitter;
use tsn_time::Nanos;

/// A dense injector so even short runs see several failures: GM shutdown
/// every 5 minutes, quick reboots.
fn dense_injector(duration: Nanos) -> InjectorConfig {
    InjectorConfig {
        duration,
        nodes: 4,
        gm_shutdown_period: Nanos::from_secs(300),
        random_per_hour_min: 4,
        random_per_hour_max: 8,
        downtime_min: Nanos::from_secs(20),
        downtime_max: Nanos::from_secs(40),
    }
}

fn run_dense(seed: u64, secs: i64) -> clocksync::RunResult {
    let duration = Nanos::from_secs(secs);
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.fault_injection = Some(dense_injector(duration));
    scenario::run(cfg).result
}

#[test]
fn gm_failures_masked_by_remaining_domains() {
    let r = run_dense(21, 900);
    assert!(
        r.counters.gm_failures >= 2,
        "wanted GM failures, got {}",
        r.counters.gm_failures
    );
    // The precision may spike around takeovers but stays within the
    // bound nearly always (the paper's Fig. 4a held throughout 24 h).
    let frac = r.series.fraction_within(r.bounds.pi_plus_gamma());
    assert!(frac > 0.995, "only {frac} within bound");
    let stats = r.series.stats().expect("probes");
    assert!(stats.mean < 2_000.0, "average {} ns", stats.mean);
}

#[test]
fn takeovers_follow_gm_failures() {
    let r = run_dense(22, 900);
    // Every GM VM failure makes the hypervisor promote the redundant VM.
    assert!(
        r.counters.takeovers >= r.counters.gm_failures,
        "takeovers {} < GM failures {}",
        r.counters.takeovers,
        r.counters.gm_failures
    );
    // And each takeover is logged after a VM failure of the same node.
    let entries = r.events.entries();
    for (i, (t, e)) in entries.iter().enumerate() {
        if let ExperimentEvent::Takeover { node } = e {
            let preceded = entries[..i].iter().any(|(tf, ef)| {
                matches!(ef, ExperimentEvent::VmFailure { node: fnode, .. } if fnode == node)
                    && *tf <= *t
            });
            assert!(
                preceded,
                "takeover on dev{} without prior failure",
                node + 1
            );
        }
    }
}

#[test]
fn rebooted_gms_resume_their_domain() {
    let r = run_dense(23, 900);
    let resumed = r
        .events
        .count(|e| matches!(e, ExperimentEvent::GmResumed { .. }));
    assert!(
        resumed >= 1,
        "no GM resumed its domain after reboot (GM failures: {})",
        r.counters.gm_failures
    );
}

#[test]
fn fault_schedule_respects_hypothesis_in_run() {
    // The generated schedule itself is validated inside the injector
    // tests; here we re-derive it with the same seed stream the world
    // uses and check the invariant end to end.
    let duration = Nanos::from_secs(900);
    let seeds = SeedSplitter::new(21);
    let mut rng = seeds.rng("faults");
    let schedule = FaultSchedule::generate(&dense_injector(duration), &mut rng);
    assert!(schedule.respects_fault_hypothesis());
    assert!(schedule.total() > 0);
}

#[test]
fn transient_faults_counted_and_logged() {
    let r = run_dense(24, 600);
    let logged_timeouts = r.events.count(|e| {
        matches!(
            e,
            ExperimentEvent::Transient {
                kind: tsn_metrics::TransientKind::TxTimestampTimeout,
                ..
            }
        )
    });
    assert_eq!(
        logged_timeouts as u64, r.counters.tx_timestamp_timeouts,
        "event log and counters disagree"
    );
}

#[test]
fn no_faults_means_no_takeovers() {
    let mut cfg = TestbedConfig::paper_default(25);
    cfg.duration = Nanos::from_secs(120);
    let r = scenario::run(cfg).result;
    assert_eq!(r.counters.takeovers, 0);
    assert_eq!(r.counters.vm_failures, 0);
}

#[test]
fn three_clock_sync_vms_survive_double_failure() {
    // §II-A extension: with a third clock-sync VM (more passthrough
    // NICs), the node survives the GM VM *and* the first redundant VM
    // failing back to back — the dependent clock fails over twice.
    let duration = Nanos::from_secs(900);
    let mut cfg = TestbedConfig::paper_default(31);
    cfg.vms_per_node = 3;
    cfg.duration = duration;
    cfg.fault_injection = Some(dense_injector(duration));
    let r = scenario::run(cfg).result;
    assert!(r.counters.takeovers >= 1);
    let frac = r.series.fraction_within(r.bounds.pi_plus_gamma());
    assert!(frac > 0.99, "only {frac} within bound with 3 VMs per node");
}

#[test]
fn voting_monitor_detects_byzantine_publisher() {
    // §II-A's voting algorithm: a clock-sync VM that publishes *wrong*
    // parameters (not silent — the fail-silent monitor cannot see it) is
    // voted out by the fail-consistent monitor when 2f+1 = 3 VMs exist.
    use clocksync::{CorruptPublisher, HypMonitorMode};
    let mut cfg = TestbedConfig::paper_default(41);
    cfg.vms_per_node = 3;
    cfg.monitor_mode = HypMonitorMode::Voting;
    cfg.duration = Nanos::from_secs(120);
    cfg.corrupt_publisher = Some(CorruptPublisher {
        node: 2,
        slot: 0, // the active maintainer turns Byzantine
        at: Nanos::from_secs(40),
        offset: Nanos::from_micros(-50),
    });
    let r = scenario::run(cfg).result;
    assert!(
        r.counters.takeovers >= 1,
        "voting monitor failed to replace the Byzantine maintainer"
    );
    // After the takeover the corrupt VM no longer reaches STSHMEM, so
    // the tail of the run is clean.
    let tail_from = tsn_time::SimTime::ZERO + r.warmup + Nanos::from_secs(60);
    let tail = r.series.window(tail_from, tail_from + Nanos::from_secs(60));
    let stats = tail.stats().expect("tail samples");
    assert!(
        stats.max <= r.bounds.pi_plus_gamma(),
        "tail still corrupted: max {}",
        stats.max
    );
}

#[test]
fn fail_silent_monitor_misses_byzantine_publisher() {
    // The same fault under the paper's 2-VM fail-silent configuration is
    // invisible to the monitor: the corrupted CLOCK_SYNCTIME persists and
    // the measured precision blows through the bound. This is the gap
    // §II-A's fail-consistent design closes.
    use clocksync::CorruptPublisher;
    let mut cfg = TestbedConfig::paper_default(41);
    cfg.duration = Nanos::from_secs(120);
    cfg.corrupt_publisher = Some(CorruptPublisher {
        node: 2,
        slot: 0,
        at: Nanos::from_secs(40),
        offset: Nanos::from_micros(-50),
    });
    let r = scenario::run(cfg).result;
    assert_eq!(
        r.counters.takeovers, 0,
        "fail-silent monitor cannot detect it"
    );
    let tail_from = tsn_time::SimTime::ZERO + r.warmup + Nanos::from_secs(60);
    let tail = r.series.window(tail_from, tail_from + Nanos::from_secs(60));
    let stats = tail.stats().expect("tail samples");
    assert!(
        stats.max > r.bounds.pi_plus_gamma(),
        "corruption unexpectedly masked: max {}",
        stats.max
    );
}
